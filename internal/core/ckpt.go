package core

import (
	"errors"
	"sort"
	"sync"

	"gpufs/internal/ckpt"
	"gpufs/internal/core/pcache"
	"gpufs/internal/core/radix"
	"gpufs/internal/gpu"
	"gpufs/internal/gsys"
	"gpufs/internal/simtime"
)

// Checkpointing a live FS (ISSUE 10). The engine produces a ckpt.FSImage
// of this GPU's buffer cache and file tables while kernels keep running,
// with copy-on-write over the device arena:
//
//	Begin   installs the capture pointer; from here every gwrite's page,
//	        the instant before it is overwritten, is offered to the
//	        capture (one atomic load on the hot path when no capture is
//	        active — the MigrateOnDrain=false bit-identity guarantee).
//	Walk    runs on a host-side actor with its OWN virtual clock and RPC
//	        lane (the cleaner's discipline), copying dirty pages by value
//	        and clean pages by reference while threadblocks proceed.
//	Commit  uninstalls the pointer, merges the write-fault copies with
//	        the walk's, and validates every file's speculated clean set
//	        against the live host (ino + generation, PhoenixOS-style):
//	        if the host moved underneath, the clean references are
//	        dropped — the restore simply starts cold for that file.
//	        Dirty pages are never dropped; they are the payload.
//
// The snapshot is fuzzy at page granularity: each page's cut lands
// somewhere between Begin and Commit (the walk's copy, or the pre-write
// copy taken by the first overlapping gwrite — whichever comes first),
// and no page is ever torn, because both copies run under the frame
// lock. Files opened after the walk enumerated the tables miss the
// image entirely; callers that need a consistent cut quiesce first, as
// the serving layer's queue freeze does.
const ckptLaneBase = 1 << 21

// ErrCheckpointActive is returned by BeginCheckpoint when a capture is
// already installed.
var ErrCheckpointActive = errors.New("gpufs: checkpoint already in progress")

// ckptPageKey identifies one captured page.
type ckptPageKey struct {
	fc   *fileCache
	page int64
}

// ckptCapture is the CoW rendezvous between the walk and concurrent
// writers. The write hook holds the frame lock when it takes mu; the
// walk NEVER holds mu while touching a frame, so the order is acyclic.
type ckptCapture struct {
	mu   sync.Mutex
	done map[ckptPageKey]struct{}
	// cow and cowClean hold pages captured by the write hook before the
	// walk reached them: value copies of pre-write dirty content, and
	// by-reference records of pre-write clean pages.
	cow      map[*fileCache][]ckpt.PageImage
	cowClean map[*fileCache][]int64
	bytes    int64
	maxBytes int64
	err      error
}

// ckptCopyOnWrite is the gwrite hook: called with the frame lock held,
// immediately before the new bytes land, so fr.Data still holds the
// pre-write content. First capture of a page wins; later writes to the
// same page find it done and pay only the map probe.
func (fs *FS) ckptCopyOnWrite(cap *ckptCapture, fc *fileCache, pageIdx int64, fr *pcache.Frame) {
	key := ckptPageKey{fc, pageIdx}
	cap.mu.Lock()
	if _, ok := cap.done[key]; ok || cap.err != nil {
		cap.mu.Unlock()
		return
	}
	cap.done[key] = struct{}{}
	if !fr.Dirty.Load() {
		// Clean at the cut: the host holds these bytes; record by
		// reference (validated at commit). O_GWRONCE pages are implicit
		// zeros — a restore re-materializes them by faulting, so they
		// need no record at all.
		if !fr.WriteOnce.Load() {
			cap.cowClean[fc] = append(cap.cowClean[fc], pageIdx)
		}
		cap.mu.Unlock()
		fs.ckptCoWFaults.Add(1)
		return
	}
	valid := fr.ValidBytes.Load()
	data := append([]byte(nil), fr.Data[:valid]...)
	cap.bytes += valid
	if cap.maxBytes > 0 && cap.bytes > cap.maxBytes {
		cap.err = ckpt.ErrBudget
	}
	cap.cow[fc] = append(cap.cow[fc], ckpt.PageImage{Index: pageIdx, Valid: valid, Data: data})
	cap.mu.Unlock()
	fs.ckptCoWFaults.Add(1)
	fs.ckptSnapshotBytes.Add(valid)
}

// ckptFileEntry is one file's walk state, held between Walk and Commit.
type ckptFileEntry struct {
	fc     *fileCache
	closed bool // from the closed-file table, not a live descriptor
	img    ckpt.FileImage
}

// Ckpt is one in-progress checkpoint of a single FS.
type Ckpt struct {
	fs    *FS
	cap   *ckptCapture
	clk   *simtime.Clock
	lane  *gsys.Client
	files []ckptFileEntry
}

// BeginCheckpoint installs the copy-on-write capture and returns the
// checkpoint handle, whose actor clock starts at start. Kernels keep
// running; their writes from this moment on preserve pre-write pages
// into the image.
func (fs *FS) BeginCheckpoint(start simtime.Time) (*Ckpt, error) {
	cap := &ckptCapture{
		done:     make(map[ckptPageKey]struct{}),
		cow:      make(map[*fileCache][]ckpt.PageImage),
		cowClean: make(map[*fileCache][]int64),
		maxBytes: fs.opt.CkptMaxBytes,
	}
	if !fs.capture.CompareAndSwap(nil, cap) {
		return nil, ErrCheckpointActive
	}
	clk := simtime.NewClock(0)
	clk.AdvanceTo(start)
	return &Ckpt{
		fs:   fs,
		cap:  cap,
		clk:  clk,
		lane: fs.sys.Bind(ckptLaneBase),
	}, nil
}

// Walk copies the buffer cache into the checkpoint, concurrently with
// running kernels: dirty pages by value, clean pages by reference. Each
// page's copy runs under the frame lock and races the write hook
// through the capture's done set — whichever records the page first
// wins, so the page's cut is unique and untorn.
func (ck *Ckpt) Walk() {
	fs := ck.fs

	// Enumerate both tables under the table lock; page copies happen
	// after it is dropped. Temporary (O_NOSYNC) and unlinked files die
	// with the host by definition; pending opens have no cache yet.
	fs.mu.Lock()
	for _, f := range fs.fds {
		if f == nil || f.fc == nil || f.err != nil || f.noSync || f.unlinked {
			continue
		}
		select {
		case <-f.ready:
		default:
			continue // still opening
		}
		ck.files = append(ck.files, ckptFileEntry{fc: f.fc, img: ckpt.FileImage{
			Path:  f.path,
			Ino:   f.fc.ino,
			Gen:   f.fc.gen.Load(),
			Size:  f.fc.size.Load(),
			Flags: int64(f.flags),
		}})
	}
	retired := make([]*fileCache, 0, len(fs.closed))
	for _, fc := range fs.closed {
		retired = append(retired, fc)
	}
	// Deterministic order (map iteration is not): the image layout, and
	// therefore the restore's open order, must not vary run to run.
	sort.Slice(retired, func(i, j int) bool { return retired[i].ino < retired[j].ino })
	for _, fc := range retired {
		ck.files = append(ck.files, ckptFileEntry{fc: fc, closed: true, img: ckpt.FileImage{
			Path:  fc.path,
			Ino:   fc.ino,
			Gen:   fc.gen.Load(),
			Size:  fc.size.Load(),
			Flags: int64(fc.lastFlags),
		}})
	}
	fs.mu.Unlock()

	cap := ck.cap
	for i := range ck.files {
		e := &ck.files[i]
		fc := e.fc
		// Peek (do not consume) the sticky errseq mark: the image must
		// carry it, but if the checkpoint aborts the source still owes
		// the error to the next gfsync/gclose.
		fc.wbMu.Lock()
		if fc.wbErr != nil {
			e.img.WbErr = fc.wbErr.Error()
		}
		fc.wbMu.Unlock()

		writeOnce := e.img.Flags&O_GWRONCE != 0
		fc.tree.ForEachReadyPage(func(idx uint64, p *radix.FPage) bool {
			if !p.TryRef() {
				return true
			}
			fi := p.Frame()
			if fi < 0 {
				p.Unref()
				return true
			}
			fr := fs.cache.Frame(fi)
			if fr.FileID.Load() != fc.tree.ID() {
				p.Unref()
				return true
			}
			pageIdx := int64(idx)
			key := ckptPageKey{fc, pageIdx}
			cap.mu.Lock()
			_, dup := cap.done[key]
			failed := cap.err != nil
			cap.mu.Unlock()
			if dup || failed {
				p.Unref()
				return !failed
			}
			// Copy OUTSIDE cap.mu: Snapshot takes the frame lock, which
			// a concurrent writer holds while taking cap.mu in the hook.
			data, _, valid := fr.Snapshot()
			dirty := fr.Dirty.Load()
			if valid > int64(len(data)) {
				valid = int64(len(data))
			}
			cap.mu.Lock()
			if _, dup := cap.done[key]; !dup && cap.err == nil {
				// A writer that beat us to the done set holds the
				// earlier (pre-write) cut; ours would be post-write.
				cap.done[key] = struct{}{}
				switch {
				case dirty:
					e.img.Dirty = append(e.img.Dirty, ckpt.PageImage{
						Index: pageIdx,
						Valid: valid,
						Data:  append([]byte(nil), data[:valid]...),
					})
					cap.bytes += valid
					if cap.maxBytes > 0 && cap.bytes > cap.maxBytes {
						cap.err = ckpt.ErrBudget
					}
					fs.ckptSnapshotBytes.Add(valid)
				case !writeOnce:
					e.img.Clean = append(e.img.Clean, pageIdx)
				}
			}
			cap.mu.Unlock()
			p.Unref()
			ck.clk.Advance(fs.opt.APICostPerPage)
			return true
		})
	}
}

// Commit uninstalls the capture, merges the write-fault copies into the
// walk's image, and validates every speculated clean set against the
// live host: a file whose (ino, generation) no longer checks out keeps
// its dirty pages (device writes the host never saw — the payload) but
// drops the clean references, so a restore can never serve stale bytes.
func (ck *Ckpt) Commit() (*ckpt.FSImage, error) {
	fs := ck.fs
	cap := ck.cap
	fs.capture.CompareAndSwap(cap, nil)
	cap.mu.Lock()
	err := cap.err
	cap.mu.Unlock()
	if err != nil {
		return nil, err
	}

	img := &ckpt.FSImage{GPU: int64(fs.gpuID)}
	for i := range ck.files {
		e := &ck.files[i]
		cap.mu.Lock()
		cow := cap.cow[e.fc]
		cowClean := cap.cowClean[e.fc]
		cap.mu.Unlock()
		e.img.Dirty = append(e.img.Dirty, cow...)
		e.img.Clean = append(e.img.Clean, cowClean...)

		needsCheck := len(e.img.Clean) > 0 || (e.closed && len(e.img.Dirty) > 0)
		if needsCheck && !fs.client.PeekValid(ck.clk, e.img.Ino, e.img.Gen) {
			// The host moved underneath the speculation window: the
			// clean pages' by-reference capture is worthless (a restore
			// would fetch the NEW host content and call it the old).
			fs.ckptValidationDrops.Add(int64(len(e.img.Clean)))
			e.img.Clean = nil
			if e.closed {
				// A retired file with a stale generation is already
				// condemned on the source: its next reopen — on any host —
				// discards the view and adopts the host content (the
				// documented weak semantics). Restoring its dirty pages
				// would resurrect data the source itself would drop, so
				// the whole entry goes; only a sticky write-back error
				// still owed to the tenant keeps a page-less stub.
				fs.ckptValidationDrops.Add(int64(len(e.img.Dirty)))
				e.img.Dirty = nil
				if e.img.WbErr == "" {
					continue
				}
			}
		}
		fs.ckptPagesDirty.Add(int64(len(e.img.Dirty)))
		fs.ckptPagesClean.Add(int64(len(e.img.Clean)))
		img.Files = append(img.Files, e.img)
	}
	img.Profiles = fs.exportProfiles()
	return img, nil
}

// Abort uninstalls the capture and discards everything gathered.
func (ck *Ckpt) Abort() {
	ck.fs.capture.CompareAndSwap(ck.cap, nil)
	ck.files = nil
}

// Now reports the checkpoint actor's virtual time.
func (ck *Ckpt) Now() simtime.Time { return ck.clk.Now() }

// CheckpointImage is the one-shot capture: Begin + Walk + Commit. It
// returns the image and the actor's end time (start plus the walk and
// validation costs — the capture half of the migration latency).
func (fs *FS) CheckpointImage(start simtime.Time) (*ckpt.FSImage, simtime.Time, error) {
	ck, err := fs.BeginCheckpoint(start)
	if err != nil {
		return nil, start, err
	}
	ck.Walk()
	img, err := ck.Commit()
	if err != nil {
		ck.Abort()
		return nil, ck.Now(), err
	}
	return img, ck.Now(), nil
}

// exportProfiles serializes the history-prefetch table, oldest first, so
// a restore replaying them through store() reproduces the LRU order.
func (fs *FS) exportProfiles() []ckpt.ProfileImage {
	h := fs.history
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []ckpt.ProfileImage
	for el := h.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*histEntry)
		p := ckpt.ProfileImage{
			Path:  e.path,
			Size:  e.prof.size,
			Gen:   e.prof.gen,
			Burst: append([]int64(nil), e.prof.burst...),
		}
		for _, s := range e.prof.strides {
			p.Strides = append(p.Strides, ckpt.StrideImage{
				Slot:   int64(s.slot),
				Stride: s.stride,
				Window: int64(s.window),
			})
		}
		out = append(out, p)
	}
	return out
}

// RestoreImage materializes a checkpoint image onto this (fresh) FS,
// driven by a host-launched block so every fetch and write is charged to
// the restore's virtual timeline. Per file: open with the image's flags,
// re-write the dirty pages (they mark themselves dirty through the
// normal gwrite path, so the restored host writes them back exactly as
// the source would have), pre-fetch the validated clean pages through
// the vectored read path, re-arm the sticky errseq mark, and retire the
// file to the closed table so the next job fast-reopens it warm.
// Best-effort per file: a file that no longer opens is skipped (its
// tenants see a cold miss, not a dead host) and the first such error is
// reported.
func (fs *FS) RestoreImage(b *gpu.Block, img *ckpt.FSImage) error {
	var firstErr error
	for i := range img.Files {
		if err := fs.restoreFile(b, &img.Files[i]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if fs.history != nil {
		for _, p := range img.Profiles {
			prof := &histProfile{
				size:  p.Size,
				gen:   p.Gen,
				burst: append([]int64(nil), p.Burst...),
			}
			for _, s := range p.Strides {
				prof.strides = append(prof.strides, histStride{
					slot:   int(s.Slot),
					stride: s.Stride,
					window: int(s.Window),
				})
			}
			fs.history.store(p.Path, prof)
		}
	}
	return firstErr
}

func (fs *FS) restoreFile(b *gpu.Block, fi *ckpt.FileImage) error {
	flags := int(fi.Flags)
	if flags&O_TRUNC != 0 {
		// The truncation happened on the source's timeline; replaying it
		// here would destroy the very content the image's clean pages
		// reference. Record it as already-performed instead, so a tenant
		// re-open with O_TRUNC does not truncate again (the same
		// once-only rule hostOpen enforces on the source).
		flags &^= O_TRUNC
		fs.mu.Lock()
		fs.truncated[fi.Path] = true
		fs.mu.Unlock()
	}
	fd, err := fs.openImpl(b, fi.Path, flags)
	if err != nil && len(fi.Dirty) > 0 && flags&O_CREATE == 0 {
		// The new host lacks the file but the image carries content the
		// host never saw: recreate it rather than drop device writes.
		flags |= O_CREATE
		fd, err = fs.openImpl(b, fi.Path, flags)
	}
	if err != nil {
		return err
	}
	f, err := fs.lookupFd(fd)
	if err != nil {
		return err
	}
	fc := f.fc
	ps := fs.opt.PageSize

	for j := range fi.Dirty {
		pg := &fi.Dirty[j]
		data := pg.Data
		if int64(len(data)) > pg.Valid && pg.Valid >= 0 {
			data = data[:pg.Valid]
		}
		if len(data) == 0 || pg.Index < 0 {
			continue
		}
		if _, err := fs.writeImpl(b, fd, data, pg.Index*ps); err != nil {
			fs.closeImpl(b, fd)
			return err
		}
	}

	// Pre-warm the validated clean pages through the vectored read path
	// (consecutive indices coalesce into one RPC). SpecNone: these are
	// known-resident-on-the-source pages, not speculation — they stay
	// out of the prefetch counters, like multi-page gread batching.
	if len(fi.Clean) > 0 && !f.writeOnce {
		lastFile := (fc.size.Load() - 1) / ps
		clean := fi.Clean
		for j := 0; j < len(clean); {
			k := j + 1
			for k < len(clean) && clean[k] == clean[k-1]+1 {
				k++
			}
			start, count := clean[j], int64(k-j)
			j = k
			if start < 0 || start > lastFile {
				continue
			}
			if start+count-1 > lastFile {
				count = lastFile - start + 1
			}
			fs.spanFetch(b, f, start, count, pcache.SpecNone, fs.lane(b))
		}
		// Spans are issued asynchronously; wait for residency so the
		// restored cache is warm (and its ReadyAt times charged) before
		// the host goes back into rotation. A page that cannot be
		// faulted (allocation pressure on a smaller replacement cache)
		// is left cold — clean pages are an optimization, not payload.
		for j := range clean {
			if clean[j] < 0 || clean[j] > lastFile {
				continue
			}
			if ref, err := fs.getPage(b, f, clean[j]); err == nil {
				ref.release()
			}
		}
	}

	if err := fs.closeImpl(b, fd); err != nil {
		return err
	}
	// closeImpl retired the cache with OUR flags (possibly O_TRUNC
	// stripped); pin the original so a tenant re-open with the source's
	// exact flags takes the free fast-reopen path.
	fs.mu.Lock()
	if cur, ok := fs.closed[fc.ino]; ok && cur == fc {
		fc.lastFlags = int(fi.Flags)
	}
	fs.mu.Unlock()
	// Re-arm the sticky write-back error AFTER the close, which would
	// otherwise have consumed it: the tenant's next gfsync/gclose on the
	// restored host must still learn the source's data didn't make it.
	if fi.WbErr != "" {
		fc.recordWriteErr(errors.New(fi.WbErr))
	}
	return nil
}
