// Package radix implements the per-file buffer-cache index of GPUfs: a
// dynamic radix tree mapping page numbers to fpage slots, designed for
// lock-free traversal by thousands of concurrent GPU threads (§4.2 of the
// paper).
//
// The concurrency design follows the paper:
//
//   - Reads are lock-free; updates (inserting nodes, deleting reclaimed
//     leaves) take the tree lock and maintain the invariants readers rely
//     on: child pointers are published atomically and node fields are fully
//     initialized before a node becomes visible.
//   - Reads can fail — a slot may be concurrently initialized or reclaimed —
//     in which case the caller retries; GPUfs retries once more without
//     locking and falls back to a locked lookup on its third attempt.
//   - Each tree carries a unique identifier that is propagated to every
//     page frame it references; the identifier combined with the page
//     offset lets a reader validate that the frame it reached through a
//     possibly stale path is in fact the page it wanted.
//   - fpages are allocated by value inside last-level nodes (in-place data
//     structures, minimizing pointer traversal), and last-level nodes are
//     threaded onto a doubly-linked FIFO list used by the paging algorithm.
//
// Memory reclamation is epoch-based (internal/core/epoch), playing the
// role the original's in-place arenas play on the GPU. Detached leaves are
// RECYCLED through a per-tree pool — republished later with a different
// base offset and fresh page identities — so "the GC keeps stale pointers
// alive" is no longer a safety argument: a reader still holding a pointer
// to a recycled leaf would observe a valid-looking node for the wrong file
// region. Instead, every traversal runs under an epoch guard (Pin/Exit),
// RemoveLeaf retires the detached leaf to the epoch domain, and the leaf
// only reaches the recycle pool after a grace period proves no guard from
// before the unlink survives. Readers that CLAIM a slot (TryBeginInit) or
// hold a page reference (TryRef) pin the leaf beyond the guard: RemoveLeaf
// refuses to detach a leaf with any non-Empty slot, so a held reference
// keeps the leaf out of the pool regardless of epochs.
package radix

import (
	"sync"
	"sync/atomic"

	"gpufs/internal/core/epoch"
)

// Fanout configuration: 6 bits per level, 64-way nodes.
const (
	bitsPerLevel = 6
	fanout       = 1 << bitsPerLevel
	levelMask    = fanout - 1
	maxLevels    = 11 // covers 64^11 pages — far beyond any file
)

// FPage is a page slot in a last-level node. It manages concurrent access
// to its page frame with a reference count and a small state machine that
// plays the role of the paper's per-fpage spinlock: initialization,
// read/write access, and page-out are mutually exclusive.
type FPage struct {
	state atomic.Int32
	refs  atomic.Int32
	maps  atomic.Int32 // live gmmap windows onto the page
	frame atomic.Int32 // pframe index, or -1
}

// FPage states.
const (
	slotEmpty    int32 = iota // no frame attached
	slotInit                  // a block is fetching/zeroing the page
	slotReady                 // frame attached and valid
	slotEvicting              // paging out
)

// Frame reports the attached pframe index, or -1.
func (p *FPage) Frame() int32 { return p.frame.Load() }

// Ready reports whether the slot currently holds a valid frame.
func (p *FPage) Ready() bool { return p.state.Load() == slotReady }

// Empty reports whether the slot holds nothing at all — not even an
// in-flight initialization or page-out. Only leaves whose slots are all
// Empty may be detached; an Init-state slot owns a frame that would
// otherwise leak.
func (p *FPage) Empty() bool { return p.state.Load() == slotEmpty }

// Refs reports the current reference count (for tests and stats).
func (p *FPage) Refs() int32 { return p.refs.Load() }

// TryBeginInit attempts to claim an empty slot for initialization. The
// winner must attach a frame and call FinishInit (or AbortInit).
func (p *FPage) TryBeginInit() bool {
	return p.state.CompareAndSwap(slotEmpty, slotInit)
}

// FinishInit publishes the frame index and makes the slot Ready with one
// reference held by the initializer (protecting the page during its first
// use, as reference counts protect pages during memory transfers, §4.1).
func (p *FPage) FinishInit(frame int32) {
	p.frame.Store(frame)
	p.refs.Store(1)
	p.state.Store(slotReady)
}

// AbortInit returns a claimed slot to empty (initialization failed).
func (p *FPage) AbortInit() {
	p.frame.Store(-1)
	p.state.Store(slotEmpty)
}

// TryRef attempts to take a read/write reference on a Ready slot. It can
// fail if the slot is empty, still initializing, or being paged out — the
// caller retries per the tree's retry protocol.
func (p *FPage) TryRef() bool {
	p.refs.Add(1)
	if p.state.Load() != slotReady {
		p.refs.Add(-1)
		return false
	}
	return true
}

// Unref drops a reference taken by TryRef or FinishInit.
func (p *FPage) Unref() {
	p.refs.Add(-1)
}

// MapRef records a live gmmap window onto the page, on top of the plain
// reference the mapping already holds. gfsync consults this — not the raw
// reference count — to decide which pages it must leave alone: mapped
// pages are the application's to gmsync (Table 1), while a page that is
// merely referenced by an in-flight gread/gwrite or a concurrent gfsync
// is safe to write back (the frame snapshot protocol tolerates racing
// writers).
func (p *FPage) MapRef() {
	p.maps.Add(1)
}

// MapUnref drops a MapRef at gmunmap.
func (p *FPage) MapUnref() {
	p.maps.Add(-1)
}

// Mapped reports whether any gmmap window onto the page is live.
func (p *FPage) Mapped() bool { return p.maps.Load() > 0 }

// TryEvict attempts to transition a Ready, unreferenced slot to Evicting.
// On success the caller owns the frame and must call FinishEvict once the
// frame is released. Fails if any reference is held.
func (p *FPage) TryEvict() bool {
	if !p.state.CompareAndSwap(slotReady, slotEvicting) {
		return false
	}
	if p.refs.Load() != 0 {
		// A racing TryRef got in before our CAS; back off.
		p.state.Store(slotReady)
		return false
	}
	return true
}

// FinishEvict completes a successful TryEvict, emptying the slot.
func (p *FPage) FinishEvict() {
	p.frame.Store(-1)
	p.state.Store(slotEmpty)
}

// Node is a radix-tree node. Interior nodes hold child pointers; last-level
// (leaf) nodes hold fanout fpages by value and live on the tree's FIFO
// list for the paging algorithm.
type Node struct {
	level int32  // 0 = leaf
	base  uint64 // first page index covered

	children [fanout]atomic.Pointer[Node] // interior only
	pages    [fanout]FPage                // leaf only

	// FIFO hooks, managed by the tree under its lock; traversed
	// lock-free by the paging algorithm.
	fifoNext atomic.Pointer[Node]
	fifoPrev atomic.Pointer[Node]
	onFIFO   bool
	detached atomic.Bool
}

// Base reports the first page index covered by a leaf.
func (n *Node) Base() uint64 { return n.base }

// Page returns the i'th fpage of a leaf node.
func (n *Node) Page(i int) *FPage { return &n.pages[i] }

// Detached reports whether the leaf has been removed from its tree.
func (n *Node) Detached() bool { return n.detached.Load() }

// Tree is one file's buffer-cache index.
type Tree struct {
	id uint64

	mu     sync.Mutex
	root   atomic.Pointer[Node]
	height atomic.Int32 // levels below the root; root covers fanout^(height+1) pages

	// FIFO list of leaves, newest at head.
	fifoHead atomic.Pointer[Node]
	fifoTail atomic.Pointer[Node]
	leaves   int

	// dom is the tree's epoch-reclamation domain. Every lock-free
	// traversal runs under one of its guards; RemoveLeaf retires detached
	// leaves into it. Per-tree domains keep one file's stalled scan from
	// delaying another file's reclamation.
	dom epoch.Domain

	// poolMu guards the recycle pool of grace-period-expired leaves.
	// Deliberately separate from mu: retire callbacks run inside
	// epoch-domain advancement, which Retire triggers while mu is held —
	// lock order is mu → dom.mu → poolMu, and callbacks only ever take
	// poolMu.
	poolMu   sync.Mutex
	pool     []*Node
	recycles atomic.Int64

	// forceLocked makes every lookup take the tree lock — the comparison
	// baseline of Figure 7.
	forceLocked atomic.Bool

	lockFreeHits atomic.Int64
	lockedHits   atomic.Int64
}

var treeIDs atomic.Uint64

// NewTree creates an empty tree with a process-unique identifier.
func NewTree() *Tree {
	return &Tree{id: treeIDs.Add(1)}
}

// ID reports the tree's unique identifier, which owners propagate to every
// page frame referenced by the tree.
func (t *Tree) ID() uint64 { return t.id }

// Pin opens an epoch guard on the tree's reclamation domain. Callers must
// hold a guard across any lock-free traversal AND across every use of the
// *FPage / *Node pointers it produced: Lookup, LookupLocked, Insert,
// OldestLeaves results, and FIFO walks. Exit the guard before blocking
// operations (frame allocation, RPC waits) — a held guard never blocks
// writers, but it does delay leaf recycling.
func (t *Tree) Pin() epoch.Guard { return t.dom.Enter() }

// EpochDomain exposes the reclamation domain (tests and stats).
func (t *Tree) EpochDomain() *epoch.Domain { return &t.dom }

// Recycles reports how many detached leaves survived their grace period
// and were reused by a later Insert.
func (t *Tree) Recycles() int64 { return t.recycles.Load() }

// SetForceLocked switches the tree into locked-traversal mode (Figure 7's
// baseline).
func (t *Tree) SetForceLocked(on bool) { t.forceLocked.Store(on) }

// CountRetry records a failed unlocked attempt that forced a retry; the
// paper's Table 2 lumps these into the locked-access count ("Locked access
// count also includes unlocked retries").
func (t *Tree) CountRetry() { t.lockedHits.Add(1) }

// Stats reports how many lookups completed lock-free versus via the locked
// path (Table 2's instrumentation; the locked count includes fallbacks
// after failed unlocked retries).
func (t *Tree) Stats() (lockFree, locked int64) {
	return t.lockFreeHits.Load(), t.lockedHits.Load()
}

// AddStats folds another counter pair into the tree's (used when a file's
// cache is recycled through the closed-file table).
func (t *Tree) AddStats(lockFree, locked int64) {
	t.lockFreeHits.Add(lockFree)
	t.lockedHits.Add(locked)
}

func capacityForHeight(h int32) uint64 {
	// fanout^(h+1); saturate to avoid overflow.
	if h >= maxLevels {
		return ^uint64(0)
	}
	return uint64(1) << (uint(h+1) * bitsPerLevel)
}

// lookupLeaf walks the tree without taking locks and returns the leaf
// covering idx, or nil if the path is not materialized. The walk is guided
// by each node's own immutable level field rather than the tree's height,
// so a reader racing with a root swap always follows a self-consistent
// path. The caller must hold an epoch guard.
func (t *Tree) lookupLeaf(idx uint64) *Node {
	n := t.root.Load()
	if n == nil || idx >= capacityForHeight(n.level) {
		return nil
	}
	for n != nil && n.level > 0 {
		slot := (idx >> (uint(n.level) * bitsPerLevel)) & levelMask
		n = n.children[slot].Load()
	}
	return n
}

// Lookup performs one lock-free lookup attempt and returns the fpage slot
// for page idx, or nil if absent. The caller must hold an epoch guard
// (Pin), must validate the attached frame (tree id + offset), and is
// responsible for the retry protocol; use LookupLocked as the final
// fallback.
func (t *Tree) Lookup(idx uint64) *FPage {
	p, _ := t.LookupLeaf(idx)
	return p
}

// LookupLeaf is Lookup returning the containing leaf as well, so callers
// that claim the slot for initialization can check leaf.Detached() after
// TryBeginInit (the claim/detach Dekker protocol of RemoveLeaf).
func (t *Tree) LookupLeaf(idx uint64) (*FPage, *Node) {
	if t.forceLocked.Load() {
		return t.LookupLockedLeaf(idx)
	}
	leaf := t.lookupLeaf(idx)
	if leaf == nil {
		return nil, nil
	}
	t.lockFreeHits.Add(1)
	return &leaf.pages[idx&levelMask], leaf
}

// LookupLocked performs a lookup under the tree lock: the third-attempt
// fallback of the retry protocol. The lock orders the walk against
// concurrent mutation, but the result outlives it — callers still hold an
// epoch guard across use of the returned slot.
func (t *Tree) LookupLocked(idx uint64) *FPage {
	p, _ := t.LookupLockedLeaf(idx)
	return p
}

// LookupLockedLeaf is LookupLocked returning the containing leaf.
func (t *Tree) LookupLockedLeaf(idx uint64) (*FPage, *Node) {
	t.mu.Lock()
	leaf := t.lookupLeaf(idx)
	t.mu.Unlock()
	t.lockedHits.Add(1)
	if leaf == nil {
		return nil, nil
	}
	return &leaf.pages[idx&levelMask], leaf
}

// Insert materializes (if needed) and returns the fpage slot for page idx,
// along with its leaf. Updates are locked; all node fields are initialized
// before publication so concurrent lock-free readers always observe
// consistent nodes. Callers hold an epoch guard across the use of the
// returned slot, entered BEFORE Insert — the guard is what keeps a leaf
// detached-and-recycled by a racing RemoveLeaf from changing identity
// under the caller's claim check.
func (t *Tree) Insert(idx uint64) (*FPage, *Node) {
	t.mu.Lock()
	defer t.mu.Unlock()

	if t.root.Load() == nil {
		if idx < fanout {
			leaf := t.newLeafLocked(0)
			t.root.Store(leaf)
			t.height.Store(0)
			return &leaf.pages[idx&levelMask], leaf
		}
		// Start with an interior skeleton tall enough for idx; the walk
		// below materializes the path (no spurious leaves).
		h := int32(1)
		for idx >= capacityForHeight(h) {
			h++
		}
		t.root.Store(&Node{level: h})
		t.height.Store(h)
	}

	// Grow the tree upward until it covers idx.
	for idx >= capacityForHeight(t.height.Load()) {
		h := t.height.Load()
		newRoot := &Node{level: h + 1}
		newRoot.children[0].Store(t.root.Load())
		t.root.Store(newRoot)
		t.height.Store(h + 1)
	}

	// Walk down, materializing the path.
	n := t.root.Load()
	for lvl := t.height.Load(); lvl > 0; lvl-- {
		slot := (idx >> (uint(lvl) * bitsPerLevel)) & levelMask
		child := n.children[slot].Load()
		if child == nil {
			if lvl == 1 {
				child = t.newLeafLocked(idx &^ uint64(levelMask))
			} else {
				child = &Node{level: lvl - 1}
			}
			n.children[slot].Store(child)
		}
		n = child
	}
	return &n.pages[idx&levelMask], n
}

// newLeafLocked produces a leaf — reusing a grace-period-expired one from
// the recycle pool when available — initializes its fpages, and pushes it
// on the FIFO head. The tree lock must be held.
func (t *Tree) newLeafLocked(base uint64) *Node {
	var leaf *Node
	t.poolMu.Lock()
	if n := len(t.pool); n > 0 {
		leaf = t.pool[n-1]
		t.pool[n-1] = nil
		t.pool = t.pool[:n-1]
	}
	t.poolMu.Unlock()
	if leaf != nil {
		// Fully re-initialize before republication: the epoch grace period
		// guarantees no reader still holds this node, so plain resets are
		// race-free, but every field a reader consults must be rebuilt —
		// a recycled leaf is a brand-new identity.
		t.recycles.Add(1)
		leaf.base = base
		leaf.detached.Store(false)
		leaf.fifoNext.Store(nil)
		leaf.fifoPrev.Store(nil)
		for i := range leaf.pages {
			p := &leaf.pages[i]
			p.state.Store(slotEmpty)
			p.refs.Store(0)
			p.maps.Store(0)
			p.frame.Store(-1)
		}
	} else {
		leaf = &Node{level: 0, base: base}
		for i := range leaf.pages {
			leaf.pages[i].frame.Store(-1)
		}
	}
	// Push on FIFO head (newest first).
	old := t.fifoHead.Load()
	leaf.fifoNext.Store(old)
	if old != nil {
		old.fifoPrev.Store(leaf)
	} else {
		t.fifoTail.Store(leaf)
	}
	t.fifoHead.Store(leaf)
	leaf.onFIFO = true
	t.leaves++
	return leaf
}

// Leaves reports the number of live last-level nodes.
func (t *Tree) Leaves() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.leaves
}

// OldestLeaves performs a lock-free traversal of the FIFO list from the
// tail (oldest allocations first) and returns up to max leaves. The paging
// algorithm uses this to pick reclamation victims without blocking
// readers. The caller must hold an epoch guard across BOTH the call and
// every use of the returned leaves — a leaf detached mid-scan must not be
// recycled into a different identity while the victim walk still holds it.
func (t *Tree) OldestLeaves(max int) []*Node {
	var out []*Node
	for n := t.fifoTail.Load(); n != nil && len(out) < max; n = n.fifoPrev.Load() {
		if !n.detached.Load() {
			out = append(out, n)
		}
	}
	return out
}

// RemoveLeaf detaches a fully-evicted leaf from the tree and the FIFO list,
// then retires it to the epoch domain; after a grace period it lands in the
// recycle pool for reuse by a later Insert. Concurrent lock-free readers
// may still reach the detached leaf until their guards exit; its empty
// fpages and the frame identifier check make such reads fail harmlessly.
//
// Readers that CLAIM a slot (TryBeginInit) are the dangerous case: a claim
// on a leaf detached an instant later would initialize a frame on an
// unreachable node, leaking it. The two sides run a store-then-verify
// (Dekker-style) protocol over sequentially consistent atomics — now
// layered on epochs, which add the guarantee that the leaf a claimant is
// racing on cannot be REUSED (base rewritten, slots reset) while the
// claimant's guard is live:
//
//   - RemoveLeaf publishes detached=true FIRST, then verifies every slot is
//     still Empty; any non-Empty slot rolls the detach back.
//   - Claimants, under an epoch guard, CAS Empty→Init FIRST, then check
//     leaf.Detached(); if set, they AbortInit and retry through a fresh
//     lookup.
//
// Whatever the interleaving, at least one side observes the other: a claim
// that survives implies the verify saw Init (detach rolled back); a
// completed detach implies every later claimant sees detached=true. The
// unlink stores below are all published before Retire, so a guard entered
// after the grace period cannot reach the retired leaf at all.
func (t *Tree) RemoveLeaf(leaf *Node) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if leaf.detached.Load() {
		return
	}

	leaf.detached.Store(true)
	for i := range leaf.pages {
		if !leaf.pages[i].Empty() {
			// A claimant won the race; keep the leaf.
			leaf.detached.Store(false)
			return
		}
	}

	// Unlink from FIFO.
	if leaf.onFIFO {
		prev, next := leaf.fifoPrev.Load(), leaf.fifoNext.Load()
		if prev != nil {
			prev.fifoNext.Store(next)
		} else {
			t.fifoHead.Store(next)
		}
		if next != nil {
			next.fifoPrev.Store(prev)
		} else {
			t.fifoTail.Store(prev)
		}
		leaf.onFIFO = false
		t.leaves--
	}

	// Unlink from the tree (parent slot -> nil). We re-walk from the
	// root; intermediate nodes are left in place (they are small and the
	// file cache is typically reused soon — matching the prototype's
	// minimal-deallocation design).
	h := t.height.Load()
	if h == 0 {
		if t.root.Load() == leaf {
			t.root.Store(nil)
		}
	} else {
		n := t.root.Load()
		for lvl := h; n != nil && lvl > 1; lvl-- {
			slot := (leaf.base >> (uint(lvl) * bitsPerLevel)) & levelMask
			n = n.children[slot].Load()
		}
		if n != nil {
			slot := (leaf.base >> bitsPerLevel) & levelMask
			if n.children[slot].Load() == leaf {
				n.children[slot].Store(nil)
			}
		}
	}

	// Every pointer to the leaf is now unpublished; retire it. The pool
	// push runs only after the grace period (lock order: mu → dom.mu →
	// poolMu — the callback never touches mu).
	t.dom.Retire(func() {
		t.poolMu.Lock()
		t.pool = append(t.pool, leaf)
		t.poolMu.Unlock()
	})
}

// ForEachReadyPage calls fn for every Ready slot in the tree (best-effort,
// lock-free; used by gfsync to find dirty pages and by tests). The walk
// runs under its own epoch guard, which also covers fn — a leaf detached
// mid-walk keeps its identity until fn returns.
func (t *Tree) ForEachReadyPage(fn func(idx uint64, p *FPage) bool) {
	g := t.Pin()
	defer g.Exit()
	for n := t.fifoTail.Load(); n != nil; n = n.fifoPrev.Load() {
		if n.detached.Load() {
			continue
		}
		for i := range n.pages {
			p := &n.pages[i]
			if p.Ready() {
				if !fn(n.base+uint64(i), p) {
					return
				}
			}
		}
	}
}
