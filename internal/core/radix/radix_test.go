package radix

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestInsertLookup(t *testing.T) {
	tr := NewTree()
	indices := []uint64{0, 1, 63, 64, 65, 4095, 4096, 1 << 18, 1 << 30}
	slots := make(map[uint64]*FPage)
	for _, idx := range indices {
		fp, leaf := tr.Insert(idx)
		if fp == nil || leaf == nil {
			t.Fatalf("insert %d returned nil", idx)
		}
		slots[idx] = fp
	}
	for _, idx := range indices {
		if got := tr.Lookup(idx); got != slots[idx] {
			t.Fatalf("lookup %d returned a different slot", idx)
		}
		if got := tr.LookupLocked(idx); got != slots[idx] {
			t.Fatalf("locked lookup %d returned a different slot", idx)
		}
	}
	// Absent pages in unmaterialized subtrees.
	if got := tr.Lookup(1 << 40); got != nil {
		t.Fatalf("lookup of absent index found %v", got)
	}
}

func TestInsertIdempotent(t *testing.T) {
	tr := NewTree()
	a, _ := tr.Insert(1000)
	b, _ := tr.Insert(1000)
	if a != b {
		t.Fatalf("re-insert must return the same slot")
	}
}

func TestLookupEquivalentToMap(t *testing.T) {
	// Property: after arbitrary inserts, Lookup agrees with a reference
	// map for both present and absent indices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTree()
		ref := make(map[uint64]*FPage)
		for i := 0; i < 300; i++ {
			idx := uint64(rng.Int63n(1 << 20))
			fp, _ := tr.Insert(idx)
			if prev, ok := ref[idx]; ok && prev != fp {
				return false
			}
			ref[idx] = fp
		}
		for idx, want := range ref {
			if tr.Lookup(idx) != want {
				return false
			}
		}
		for i := 0; i < 100; i++ {
			idx := uint64(rng.Int63n(1<<20)) + (1 << 21) // disjoint range
			if tr.Lookup(idx) != nil {
				// Slots can exist within a materialized leaf even if
				// never inserted; they must at least be empty.
				if tr.Lookup(idx).Ready() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeIDsUnique(t *testing.T) {
	a, b := NewTree(), NewTree()
	if a.ID() == b.ID() || a.ID() == 0 {
		t.Fatalf("tree ids must be unique and non-zero: %d %d", a.ID(), b.ID())
	}
}

func TestFPageStateMachine(t *testing.T) {
	var p FPage
	p.frame.Store(-1)

	if p.TryRef() {
		t.Fatalf("ref on empty slot")
	}
	if !p.TryBeginInit() {
		t.Fatalf("claim empty slot")
	}
	if p.TryBeginInit() {
		t.Fatalf("double claim")
	}
	if p.TryRef() {
		t.Fatalf("ref during init")
	}
	p.FinishInit(7)
	if p.Frame() != 7 || !p.Ready() {
		t.Fatalf("finish init state")
	}
	if p.Refs() != 1 {
		t.Fatalf("initializer should hold one ref")
	}
	// Referenced pages cannot be evicted.
	if p.TryEvict() {
		t.Fatalf("evicted a referenced page")
	}
	p.Unref()
	if !p.TryRef() {
		t.Fatalf("ref on ready slot")
	}
	if p.TryEvict() {
		t.Fatalf("evicted while referenced")
	}
	p.Unref()
	if !p.TryEvict() {
		t.Fatalf("evict unreferenced ready slot")
	}
	if p.TryRef() {
		t.Fatalf("ref during eviction")
	}
	p.FinishEvict()
	if p.Ready() || p.Frame() != -1 {
		t.Fatalf("evicted slot not empty")
	}

	// Abort path.
	p.TryBeginInit()
	p.AbortInit()
	if p.Ready() || p.Frame() != -1 {
		t.Fatalf("aborted slot not empty")
	}
}

func TestRefEvictExclusion(t *testing.T) {
	// Torture: referencing and evicting must never both succeed at once.
	var p FPage
	p.frame.Store(-1)
	p.TryBeginInit()
	p.FinishInit(1)
	p.Unref()

	var violations int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if p.TryRef() {
					if !p.Ready() {
						mu.Lock()
						violations++
						mu.Unlock()
					}
					p.Unref()
				} else if p.TryEvict() {
					if p.Refs() != 0 {
						mu.Lock()
						violations++
						mu.Unlock()
					}
					p.FinishInit(1) // reinstate for the next round
					p.Unref()
				}
			}
		}()
	}
	wg.Wait()
	if violations != 0 {
		t.Fatalf("%d exclusion violations", violations)
	}
}

func TestFIFOOrder(t *testing.T) {
	tr := NewTree()
	// Insert across three leaves in order.
	tr.Insert(0)         // leaf A (newest last in FIFO tail order)
	tr.Insert(100)       // leaf B
	tr.Insert(100 * 100) // leaf C
	leaves := tr.OldestLeaves(10)
	if len(leaves) != 3 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	if leaves[0].Base() != 0 {
		t.Fatalf("oldest leaf should cover page 0, got base %d", leaves[0].Base())
	}
	if tr.Leaves() != 3 {
		t.Fatalf("leaf count %d", tr.Leaves())
	}
	// Bounded traversal.
	if got := tr.OldestLeaves(2); len(got) != 2 {
		t.Fatalf("bounded traversal returned %d", len(got))
	}
}

func TestRemoveLeaf(t *testing.T) {
	tr := NewTree()
	fp, leaf := tr.Insert(4096)
	fp.TryBeginInit()
	fp.FinishInit(3)
	fp.Unref()

	// A leaf with a non-Empty slot must NOT detach: its slot still owns
	// frame 3, which would be stranded on an unreachable node.
	tr.RemoveLeaf(leaf)
	if leaf.Detached() {
		t.Fatalf("leaf with a Ready slot must not detach")
	}
	if tr.Leaves() != 1 {
		t.Fatalf("leaf count after refused removal: %d", tr.Leaves())
	}

	// Evict the page; now the leaf is fully empty and removable.
	if !fp.TryEvict() {
		t.Fatalf("TryEvict failed on an unreferenced Ready slot")
	}
	fp.FinishEvict()
	tr.RemoveLeaf(leaf)
	if !leaf.Detached() {
		t.Fatalf("leaf not detached")
	}
	if tr.Leaves() != 0 {
		t.Fatalf("leaf count after removal: %d", tr.Leaves())
	}
	// A stale reader that reaches the detached leaf sees the slot, but
	// identifier validation (pframe-level) rejects it; the tree itself
	// no longer returns it for fresh lookups once re-inserted elsewhere.
	fp2, leaf2 := tr.Insert(4096)
	if leaf2 == leaf {
		t.Fatalf("re-insert must materialize a fresh leaf")
	}
	if fp2 == fp {
		t.Fatalf("re-insert must produce a fresh slot")
	}
	// Removing twice is harmless.
	tr.RemoveLeaf(leaf)
}

func TestStatsCounting(t *testing.T) {
	tr := NewTree()
	tr.Insert(5)
	tr.Lookup(5)
	tr.Lookup(5)
	tr.LookupLocked(5)
	tr.CountRetry()
	lf, lk := tr.Stats()
	if lf != 2 || lk != 2 {
		t.Fatalf("stats: lockfree=%d locked=%d, want 2/2", lf, lk)
	}
	tr.AddStats(10, 20)
	lf, lk = tr.Stats()
	if lf != 12 || lk != 22 {
		t.Fatalf("AddStats: %d/%d", lf, lk)
	}
}

func TestForceLocked(t *testing.T) {
	tr := NewTree()
	tr.SetForceLocked(true)
	tr.Insert(1)
	tr.Lookup(1)
	lf, lk := tr.Stats()
	if lf != 0 || lk != 1 {
		t.Fatalf("forced-locked lookup counted wrong: %d/%d", lf, lk)
	}
}

func TestConcurrentInsertLookup(t *testing.T) {
	tr := NewTree()
	const n = 2000
	var writers, readers sync.WaitGroup
	// Writers insert a shared key space while readers traverse lock-free.
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < n; i++ {
				tr.Insert(uint64(rng.Int63n(1 << 16)))
			}
		}(g)
	}
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for {
				select {
				case <-stop:
					return
				default:
					tr.Lookup(uint64(rng.Int63n(1 << 16)))
				}
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	// Every inserted index must now be reachable.
	for g := 0; g < 4; g++ {
		rng := rand.New(rand.NewSource(int64(g)))
		for i := 0; i < n; i++ {
			idx := uint64(rng.Int63n(1 << 16))
			if tr.Lookup(idx) == nil {
				t.Fatalf("inserted index %d not found", idx)
			}
		}
	}
}

func TestForEachReadyPage(t *testing.T) {
	tr := NewTree()
	for i := uint64(0); i < 10; i++ {
		fp, _ := tr.Insert(i * 64) // one per leaf
		fp.TryBeginInit()
		fp.FinishInit(int32(i))
		fp.Unref()
	}
	count := 0
	tr.ForEachReadyPage(func(idx uint64, p *FPage) bool {
		count++
		return true
	})
	if count != 10 {
		t.Fatalf("visited %d ready pages, want 10", count)
	}
	// Early termination.
	count = 0
	tr.ForEachReadyPage(func(idx uint64, p *FPage) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func BenchmarkLookupLockFree(b *testing.B) {
	tr := NewTree()
	for i := uint64(0); i < 4096; i++ {
		tr.Insert(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(uint64(i) & 4095)
	}
}

func BenchmarkLookupLocked(b *testing.B) {
	tr := NewTree()
	for i := uint64(0); i < 4096; i++ {
		tr.Insert(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.LookupLocked(uint64(i) & 4095)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := NewTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(uint64(i))
	}
}

func BenchmarkTryRefUnref(b *testing.B) {
	var p FPage
	p.frame.Store(-1)
	p.TryBeginInit()
	p.FinishInit(1)
	p.Unref()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.TryRef() {
			p.Unref()
		}
	}
}
