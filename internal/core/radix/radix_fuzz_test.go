package radix

import (
	"sync"
	"testing"
)

// FuzzRadixTree interprets the fuzz input as an op program against one tree
// and checks every observation against a reference model of the slot state
// machine. It covers the full lifecycle — Insert, Lookup (lock-free and
// locked), init/abort, ref/unref, evict, leaf removal (including the
// refuse-when-occupied rule RemoveLeaf enforces against frame stranding),
// and racing initializers — then sweeps the final tree for invariant
// violations.
//
// Byte program: each step consumes 3 bytes [op, idxHi, idxLo]; the index
// space is folded into 4 leaves' worth of slots so collisions, re-inserts
// and leaf-level ops happen constantly.
func FuzzRadixTree(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 2, 0, 1, 4, 0, 1, 5, 0, 1, 6, 0, 64})
	f.Add([]byte{2, 0, 0, 6, 0, 0, 5, 0, 0, 6, 0, 0, 2, 0, 0})
	f.Add([]byte{7, 0, 7, 7, 0, 7, 5, 0, 7, 3, 1, 0, 6, 1, 0, 1, 0, 7})
	// One full leaf drained and removed.
	full := []byte{}
	for i := byte(0); i < fanout; i++ {
		full = append(full, 2, 0, i) // init+finish every slot of leaf 0
	}
	for i := byte(0); i < fanout; i++ {
		full = append(full, 5, 0, i) // evict them all
	}
	full = append(full, 6, 0, 0, 0, 0, 0) // remove leaf, re-insert
	f.Add(full)

	f.Fuzz(func(t *testing.T, in []byte) {
		const (
			stEmpty = iota
			stReady
		)
		type slotModel struct {
			fp    *FPage
			state int
		}
		tr := NewTree()
		model := map[uint64]*slotModel{}

		// track materializes the slot for idx via Insert and checks that
		// re-insertion is stable.
		track := func(idx uint64) *slotModel {
			fp, leaf := tr.Insert(idx)
			if fp == nil || leaf == nil {
				t.Fatalf("Insert(%d) returned nil", idx)
			}
			if leaf.Base() != idx-idx%fanout {
				t.Fatalf("Insert(%d): leaf base %d", idx, leaf.Base())
			}
			if leaf.Detached() {
				t.Fatalf("Insert(%d) returned a detached leaf", idx)
			}
			m := model[idx]
			if m == nil {
				m = &slotModel{fp: fp, state: stEmpty}
				if fp.Ready() {
					t.Fatalf("Insert(%d): fresh slot already ready", idx)
				}
				model[idx] = m
			} else if m.fp != fp {
				t.Fatalf("Insert(%d) returned a different slot for a live leaf", idx)
			}
			return m
		}

		for i := 0; i+2 < len(in); i += 3 {
			op := in[i] % 8
			idx := (uint64(in[i+1])<<8 | uint64(in[i+2])) % (4 * fanout)
			switch op {
			case 0: // insert
				track(idx)

			case 1: // lookup, both variants, against the model
				fp := tr.Lookup(idx)
				flk := tr.LookupLocked(idx)
				if m := model[idx]; m != nil {
					if fp != m.fp || flk != m.fp {
						t.Fatalf("Lookup(%d) disagrees with model", idx)
					}
				} else if fp != nil && fp.Ready() {
					t.Fatalf("Lookup(%d) found a ready slot never initialized", idx)
				}

			case 2: // claim + finish init (initializer's ref dropped at once)
				m := track(idx)
				ok := m.fp.TryBeginInit()
				if ok != (m.state == stEmpty) {
					t.Fatalf("TryBeginInit(%d) = %v in state %d", idx, ok, m.state)
				}
				if ok {
					m.fp.FinishInit(int32(idx))
					m.fp.Unref()
					if m.fp.Frame() != int32(idx) || !m.fp.Ready() {
						t.Fatalf("FinishInit(%d): frame=%d ready=%v", idx, m.fp.Frame(), m.fp.Ready())
					}
					m.state = stReady
				}

			case 3: // claim + abort: slot must come back empty
				m := track(idx)
				if m.fp.TryBeginInit() {
					if m.state != stEmpty {
						t.Fatalf("TryBeginInit(%d) succeeded in state %d", idx, m.state)
					}
					m.fp.AbortInit()
					if !m.fp.Empty() || m.fp.Frame() != -1 {
						t.Fatalf("AbortInit(%d) left state=%v frame=%d", idx, m.fp.Empty(), m.fp.Frame())
					}
				}

			case 4: // ref/unref round trip
				m := track(idx)
				ok := m.fp.TryRef()
				if ok != (m.state == stReady) {
					t.Fatalf("TryRef(%d) = %v in state %d", idx, ok, m.state)
				}
				if ok {
					if m.fp.Refs() < 1 {
						t.Fatalf("TryRef(%d): refs=%d", idx, m.fp.Refs())
					}
					m.fp.Unref()
				}

			case 5: // evict
				m := track(idx)
				ok := m.fp.TryEvict()
				if ok != (m.state == stReady) {
					t.Fatalf("TryEvict(%d) = %v in state %d", idx, ok, m.state)
				}
				if ok {
					m.fp.FinishEvict()
					if !m.fp.Empty() || m.fp.Frame() != -1 {
						t.Fatalf("FinishEvict(%d) left a non-empty slot", idx)
					}
					m.state = stEmpty
				}

			case 6: // remove leaf: detaches iff every slot is empty
				_, leaf := tr.LookupLeaf(idx)
				if leaf == nil {
					continue
				}
				base := leaf.Base()
				occupied := false
				for s := uint64(0); s < fanout; s++ {
					if m := model[base+s]; m != nil && m.state != stEmpty {
						occupied = true
						break
					}
				}
				before := tr.Leaves()
				wasDetached := leaf.Detached()
				tr.RemoveLeaf(leaf)
				switch {
				case wasDetached:
					if tr.Leaves() != before {
						t.Fatalf("re-removing a detached leaf changed the leaf count")
					}
				case occupied:
					if leaf.Detached() {
						t.Fatalf("RemoveLeaf detached leaf %d with an occupied slot (frame strand)", base)
					}
					if tr.Leaves() != before {
						t.Fatalf("refused removal changed the leaf count")
					}
				default:
					if !leaf.Detached() {
						t.Fatalf("RemoveLeaf left an all-empty leaf %d attached", base)
					}
					if tr.Leaves() != before-1 {
						t.Fatalf("leaf count %d after removal, want %d", tr.Leaves(), before-1)
					}
					// Dead slots must not be resurrected: forget them so a
					// later Insert materializes (and we track) a fresh leaf.
					for s := uint64(0); s < fanout; s++ {
						delete(model, base+s)
					}
				}

			case 7: // racing initializers: exactly one side may win a claim
				m := track(idx)
				var wg sync.WaitGroup
				wins := make([]bool, 2)
				for g := 0; g < 2; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						wins[g] = m.fp.TryBeginInit()
					}(g)
				}
				wg.Wait()
				won := 0
				for _, w := range wins {
					if w {
						won++
					}
				}
				switch {
				case m.state != stEmpty && won != 0:
					t.Fatalf("claim race on non-empty slot %d: %d winners", idx, won)
				case m.state == stEmpty && won != 1:
					t.Fatalf("claim race on empty slot %d: %d winners, want 1", idx, won)
				}
				if won == 1 {
					m.fp.FinishInit(int32(idx))
					m.fp.Unref()
					m.state = stReady
				}
			}
		}

		// Final sweep: the tree's ready set must match the model exactly.
		wantReady := 0
		for idx, m := range model {
			if tr.Lookup(idx) != m.fp {
				t.Fatalf("final Lookup(%d) disagrees with model", idx)
			}
			if m.state == stReady {
				wantReady++
				if !m.fp.Ready() {
					t.Fatalf("model-ready slot %d not ready", idx)
				}
			}
		}
		gotReady := 0
		tr.ForEachReadyPage(func(idx uint64, p *FPage) bool {
			gotReady++
			m := model[idx]
			if m == nil || m.fp != p || m.state != stReady {
				t.Fatalf("ForEachReadyPage visited untracked slot %d", idx)
			}
			return true
		})
		if gotReady != wantReady {
			t.Fatalf("ready sweep saw %d pages, model has %d", gotReady, wantReady)
		}
	})
}
