package radix

import (
	"math/rand"
	"sync"
	"testing"
)

// TestEpochReclamationStress is the ISSUE 8 reclamation-safety suite: for
// 200 seeds, goroutines race lookups, inserts, claim/evict cycles, and leaf
// detachment over a small index space — exactly the operation mix of the
// buffer-cache hot path — while the epoch domain retires and recycles
// leaves underneath them. Run under -race this exercises the
// publish/unlink/retire edges; after each seed the domain must quiesce with
// every retired leaf freed (no leaks), and recycled leaves must have come
// back fully reset (checked implicitly: a stale Ready slot or dangling
// frame index would break the claim protocol's invariants below).
func TestEpochReclamationStress(t *testing.T) {
	const (
		seeds      = 200
		goroutines = 4
		opsPerG    = 250
		indexSpace = 4 * 64 // 4 leaves' worth of slots
	)
	for seed := 0; seed < seeds; seed++ {
		tr := NewTree()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(seed*1000 + g)))
				for op := 0; op < opsPerG; op++ {
					idx := uint64(rng.Intn(indexSpace))
					switch rng.Intn(10) {
					case 0, 1, 2: // lookup under a guard (the read hot path)
						guard := tr.Pin()
						fp, leaf := tr.LookupLeaf(idx)
						if fp != nil {
							if fp.TryRef() {
								if fi := fp.Frame(); fi < 0 {
									t.Errorf("seed %d: Ready slot %d with no frame", seed, idx)
								}
								fp.Unref()
							}
							_ = leaf.Detached()
						}
						guard.Exit()
					case 3, 4, 5: // insert + claim + publish (the fault path)
						guard := tr.Pin()
						fp, leaf := tr.Insert(idx)
						if !fp.TryBeginInit() {
							guard.Exit()
							continue
						}
						if leaf.Detached() {
							fp.AbortInit()
							guard.Exit()
							continue
						}
						guard.Exit()
						fp.FinishInit(int32(idx%64) + 1)
						fp.Unref()
					case 6, 7: // evict (the paging path)
						guard := tr.Pin()
						fp, _ := tr.LookupLeaf(idx)
						if fp == nil || !fp.TryEvict() {
							guard.Exit()
							continue
						}
						guard.Exit()
						fp.FinishEvict()
					default: // detach empty leaves (the reclamation path)
						guard := tr.Pin()
						for _, leaf := range tr.OldestLeaves(8) {
							empty := true
							for i := 0; i < 64; i++ {
								if !leaf.Page(i).Empty() {
									empty = false
									break
								}
							}
							if empty {
								tr.RemoveLeaf(leaf)
							}
						}
						guard.Exit()
					}
				}
			}(g)
		}
		wg.Wait()

		dom := tr.EpochDomain()
		if !dom.Quiesce() {
			t.Fatalf("seed %d: leak — retired %d leaves, freed %d",
				seed, dom.Retired(), dom.Freed())
		}
	}
}

// TestEpochRecycledLeafReset checks a leaf that went through
// detach→retire→recycle comes back pristine: no stale Ready slots, frames,
// refs, or FIFO links from its previous life.
func TestEpochRecycledLeafReset(t *testing.T) {
	tr := NewTree()
	fp, leaf := tr.Insert(64)
	if !fp.TryBeginInit() {
		t.Fatal("claim failed")
	}
	fp.FinishInit(7)
	fp.Unref()
	if !fp.TryEvict() {
		t.Fatal("evict failed")
	}
	fp.FinishEvict()
	tr.RemoveLeaf(leaf)
	if !tr.EpochDomain().Quiesce() {
		t.Fatal("retired leaf not freed after quiescence")
	}

	// The next insert on the same range must reuse the pooled leaf…
	fp2, leaf2 := tr.Insert(64)
	if tr.Recycles() != 1 {
		t.Fatalf("Recycles() = %d, want 1", tr.Recycles())
	}
	if leaf2 != leaf {
		t.Fatal("pooled leaf was not reused")
	}
	// …fully reset.
	if leaf2.Detached() {
		t.Error("recycled leaf still marked detached")
	}
	for i := 0; i < 64; i++ {
		p := leaf2.Page(i)
		if !p.Empty() || p.Refs() != 0 || p.Frame() != -1 {
			t.Errorf("slot %d not reset: ready=%v refs=%d frame=%d",
				i, p.Ready(), p.Refs(), p.Frame())
		}
	}
	if !fp2.TryBeginInit() {
		t.Error("recycled slot not claimable")
	} else {
		fp2.AbortInit()
	}
}
