package radix

import (
	"sync"
	"testing"
)

// TestClaimDetachRace tortures the store-then-verify protocol between a
// slot claimant and RemoveLeaf (the Dekker construction documented on
// RemoveLeaf). The hazard it guards against: a claimant wins TryBeginInit
// on a leaf that detaches concurrently, attaches a frame, and the frame is
// stranded on an unreachable node — invisible to eviction and to a restart
// sweep. The protocol guarantees at least one side observes the other:
// either the remover sees the claimed slot and refuses, or the claimant
// sees the detach flag and aborts. Both succeeding is the leak.
func TestClaimDetachRace(t *testing.T) {
	const rounds = 5000
	for r := 0; r < rounds; r++ {
		tr := NewTree()
		fp, leaf := tr.Insert(uint64(r) % 256)

		var wg sync.WaitGroup
		var claimed bool
		wg.Add(2)
		go func() { // claimant: getPage/prefetchPage's claim sequence
			defer wg.Done()
			if !fp.TryBeginInit() {
				return
			}
			if leaf.Detached() {
				fp.AbortInit()
				return
			}
			fp.FinishInit(1)
			fp.Unref()
			claimed = true
		}()
		go func() { // remover: eviction's empty-leaf reclamation
			defer wg.Done()
			tr.RemoveLeaf(leaf)
		}()
		wg.Wait()

		if leaf.Detached() && claimed {
			t.Fatalf("round %d: frame stranded — slot initialized on a detached leaf", r)
		}
		if !leaf.Detached() && !claimed && !fp.Empty() {
			t.Fatalf("round %d: aborted claim left slot non-empty", r)
		}
	}
}

// TestRemoveLeafRollback: a refused removal must fully roll the detach
// flag back so later claims and removals behave normally.
func TestRemoveLeafRollback(t *testing.T) {
	tr := NewTree()
	fp, leaf := tr.Insert(64)
	fp.TryBeginInit()
	fp.FinishInit(2)
	fp.Unref()

	tr.RemoveLeaf(leaf)
	if leaf.Detached() {
		t.Fatalf("removal of an occupied leaf succeeded")
	}
	// The rolled-back leaf keeps serving claims.
	fp2, leaf2 := tr.Insert(65)
	if leaf2 != leaf {
		t.Fatalf("rollback replaced the leaf")
	}
	if !fp2.TryBeginInit() {
		t.Fatalf("rollback left the leaf unusable")
	}
	fp2.AbortInit()
	// Drain and retry: now it must detach.
	if !fp.TryEvict() {
		t.Fatalf("evict after rollback")
	}
	fp.FinishEvict()
	tr.RemoveLeaf(leaf)
	if !leaf.Detached() {
		t.Fatalf("drained leaf still refuses removal")
	}
}
