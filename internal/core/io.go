package core

import (
	"fmt"
	"runtime"

	"gpufs/internal/core/pcache"
	"gpufs/internal/core/radix"
	"gpufs/internal/gpu"
	"gpufs/internal/simtime"
)

// pageRef is a referenced buffer-cache page: the caller holds one reference
// on fp, protecting fr against reclamation, and must release it.
type pageRef struct {
	fr *pcache.Frame
	fp *radix.FPage
}

func (r pageRef) release() { r.fp.Unref() }

// getPage locates (or faults in) the page of f covering pageIdx and returns
// it referenced. It implements the paper's retry protocol: two lock-free
// lookup attempts, then a locked lookup; initialization and page-out
// exclude each other through the fpage state machine; and frames reached
// through stale paths are rejected by identifier validation.
//
// Every traversal attempt runs under an epoch guard (radix.Tree.Pin): the
// guard spans the lookup and every touch of the returned slot, up to the
// point where a successful TryRef (a Ready slot with a reference pins the
// leaf against RemoveLeaf) or a successful TryBeginInit + Detached check
// (an Init slot pins it likewise) makes the leaf's identity stable without
// it. The guard is dropped before the slow work — frame allocation,
// eviction, the fill RPC — so a faulting block never delays leaf recycling.
func (fs *FS) getPage(b *gpu.Block, f *file, pageIdx int64) (pageRef, error) {
	fc := f.fc
	offset := pageIdx * fs.opt.PageSize

	for attempt := 0; ; attempt++ {
		if attempt > 0 && attempt < 3 {
			// A previous unlocked attempt failed; Table 2 counts
			// these retries with the locked accesses.
			fc.tree.CountRetry()
		}
		g := fc.tree.Pin()
		var fp *radix.FPage
		var leaf *radix.Node
		if attempt < 2 && !fs.opt.ForceLockedTraversal {
			// The lock-free walk is a few dependent reads of radix
			// nodes: device-memory traffic, largely hidden by warp
			// multiplexing, competing only for memory bandwidth.
			b.UseMemory(fs.opt.RadixLookupLockFree)
			fp, leaf = fc.tree.LookupLeaf(uint64(pageIdx))
		} else {
			// Third attempt (or forced mode): locked traversal.
			// Locked lookups serialize on the tree in virtual time,
			// which is what makes them ~3x slower under contention
			// (Figure 7).
			b.Clock.Use(fc.lockRes, fs.opt.RadixLookupLocked)
			fp, leaf = fc.tree.LookupLockedLeaf(uint64(pageIdx))
		}
		if fp == nil {
			// Path not materialized: insert the slot (a locked
			// update) and fall through to claim it.
			fp, leaf = fc.tree.Insert(uint64(pageIdx))
		}

		// Fast path: the page is resident.
		if fp.TryRef() {
			fi := fp.Frame()
			if fi >= 0 {
				fr := fs.cache.Frame(fi)
				if fr.Matches(fc.tree.ID(), offset) {
					g.Exit() // the reference now pins the leaf
					// A read-ahead transfer is usable only once
					// it completes; synchronous faults were paid
					// for by the faulting block.
					if fr.Prefetched.Load() {
						b.Clock.AdvanceTo(simtime.Time(fr.ReadyAt.Load()))
						// First demand consumer claims the
						// speculation as a hit (the adaptive
						// window's ramp-up signal).
						if fr.Spec.CompareAndSwap(pcache.SpecPending, pcache.SpecUsed) {
							fs.prefetchUsed.Add(1)
							fc.prefetchUsed.Add(1)
							fs.specPending.Add(-1)
						} else if fr.Spec.CompareAndSwap(pcache.SpecReplay, pcache.SpecUsed) {
							fs.prefetchUsed.Add(1)
							fc.prefetchUsed.Add(1)
							fs.replayUsed.Add(1)
							fs.specPending.Add(-1)
						}
					}
					fs.cacheHits.Add(1)
					return pageRef{fr: fr, fp: fp}, nil
				}
			}
			fp.Unref()
			g.Exit()
			continue // stale frame; retry
		}

		// Slow path: try to become the initializer.
		if fp.TryBeginInit() {
			if leaf.Detached() {
				// Claim/detach race (see radix.RemoveLeaf): the leaf
				// left the tree between our lookup and the claim.
				// Initializing a frame here would strand it on an
				// unreachable node; retry through a fresh lookup.
				fp.AbortInit()
				g.Exit()
				continue
			}
			// The Init claim pins the leaf (RemoveLeaf requires every
			// slot Empty); drop the guard before the slow fault work.
			g.Exit()
			fr, err := fs.allocFrame(b, fc, offset)
			if err != nil {
				fp.AbortInit()
				return pageRef{}, err
			}
			if err := fs.fillPage(b, f, fr, offset); err != nil {
				fs.cache.Release(fr, false)
				fc.frames.Add(-1)
				fp.AbortInit()
				return pageRef{}, err
			}
			b.Busy(fs.opt.APICostPerPage)
			fp.FinishInit(fr.Index) // holds our reference
			fs.cacheMisses.Add(1)
			return pageRef{fr: fr, fp: fp}, nil
		}

		// Another block is initializing or evicting this slot; yield
		// and retry. (Warps multiplex on the MP while blocked, §2.)
		g.Exit()
		runtime.Gosched()
	}
}

// fillPage initializes a freshly allocated frame: zero-fill for O_GWRONCE
// files (whose pristine content is implicitly zero, so nothing is fetched
// from the CPU, §3.1), or an RPC read of the page's file content otherwise.
// Threads of the block perform the copy or zeroing collaboratively (§4.1).
func (fs *FS) fillPage(b *gpu.Block, f *file, fr *pcache.Frame, offset int64) error {
	if f.writeOnce {
		// O_GWRONCE: never fetch; the pristine copy is implicitly all
		// zeros (§3.1). O_NOSYNC files do NOT take this shortcut: a
		// page spilled to the host under cache pressure must be
		// fetched back on the next touch.
		b.ZeroBytes(fr.Data)
		fr.WriteOnce.Store(true)
		fr.ValidBytes.Store(0)
		fr.ReadyAt.Store(int64(b.Clock.Now()))
		return nil
	}

	n, err := fs.lane(b).ReadPages(b.Clock, f.hostFd, offset, fr.Data)
	if err != nil {
		return fmt.Errorf("gpufs: faulting page at %d of %q: %w", offset, f.path, err)
	}
	if n < len(fr.Data) {
		// Zero the tail so reads past EOF (after local extension)
		// observe zeros rather than a previous tenant's bytes.
		b.ZeroBytes(fr.Data[n:])
	}
	fr.ValidBytes.Store(int64(n))
	fr.ReadyAt.Store(int64(b.Clock.Now()))
	if f.writeShrd {
		// General write-sharing: preserve the pristine copy the
		// diff-and-merge protocol diffs against at sync time.
		fr.SetPristine(fr.Data[:n])
	}
	return nil
}

// extendValid raises fr.ValidBytes to at least n (atomic max).
func extendValid(fr *pcache.Frame, n int64) {
	for {
		cur := fr.ValidBytes.Load()
		if n <= cur || fr.ValidBytes.CompareAndSwap(cur, n) {
			return
		}
	}
}

// extendSize raises fc.size to at least n (atomic max).
func extendSize(fc *fileCache, n int64) {
	for {
		cur := fc.size.Load()
		if n <= cur || fc.size.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Read implements gread: a positional read of len(dst) bytes at offset off
// (the pread-style call of Table 1 — no seek pointer exists to share).
// Unlike gmmap it is not constrained to a single cache page, making it the
// right call for random access at arbitrary granularity (§5.1.2). Threads
// of the block copy the data collaboratively. Returns the byte count,
// short at end of file.
func (fs *FS) readImpl(b *gpu.Block, fd int, dst []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset %d", ErrInvalid, off)
	}
	f, err := fs.lookupFd(fd)
	if err != nil {
		return 0, err
	}
	if !f.readable {
		return 0, fmt.Errorf("%w: %q", ErrWriteOnly, f.path)
	}

	size := f.fc.size.Load()
	if off >= size {
		return 0, nil
	}
	want := int64(len(dst))
	if off+want > size {
		want = size - off
	}

	ps := fs.opt.PageSize
	firstPage := off / ps
	lastPage := (off + want - 1) / ps

	// A read spanning several pages issues the later pages' fetches
	// asynchronously BEFORE faulting the first page, so all of them are
	// in flight on the block's ring shard at once: the daemon worker
	// pipelines the file reads and the DMAs overlap, instead of one
	// blocking round trip per page. The copy loop below then finds the
	// frames resident (or initializing) and advances the block's clock to
	// each transfer's completion through Frame.ReadyAt — the same
	// mechanism read-ahead uses. Speculation is bounded: pages past the
	// budget fall back to synchronous faults in the loop.
	if lastPage > firstPage && !f.writeOnce {
		budget := fs.fetchBudget()
		for pageIdx := firstPage + 1; pageIdx <= lastPage && budget > 0; pageIdx++ {
			// SpecNone: these pages are known-needed by this very read,
			// not speculation — they stay out of the prefetch counters.
			fs.prefetchPage(b, f, pageIdx, pcache.SpecNone)
			budget--
		}
	}

	var done int64
	for done < want {
		cur := off + done
		pageIdx := cur / ps
		inPage := cur - pageIdx*ps
		n := ps - inPage
		if n > want-done {
			n = want - done
		}

		ref, err := fs.getPage(b, f, pageIdx)
		if err != nil {
			return int(done), err
		}
		ref.fr.Lock()
		if fs.opt.ZeroCopyRead {
			// Zero-copy hit: the caller reads the pinned frame in place, so
			// the only modelled cost is one device-memory pass over the
			// bytes (the Go copy below just materializes the API contract
			// that dst owns the data).
			copy(dst[done:done+n], ref.fr.Data[inPage:inPage+n])
			b.TouchBytes(n)
			fs.zeroCopyReads.Add(1)
		} else {
			b.CopyBytes(dst[done:done+n], ref.fr.Data[inPage:inPage+n])
		}
		ref.fr.Unlock()
		ref.release()
		done += n
	}
	// While a history replay is actively in flight it owns prediction for
	// this file: the burst already names the future accesses, and letting
	// the stride detector race it just splits the same stream across two
	// issuers — fragmenting the vectored spans and saturating the
	// speculation cap with duplicate guesses. The detector resumes (with
	// its seeded slots) the moment the replay completes or stands down.
	replaying := f.replay != nil && !f.replay.done.Load()
	if fs.opt.ReadAheadAdaptive && !replaying {
		fs.adaptiveReadAhead(b, f, firstPage, (off+done-1)/ps)
	} else if fs.opt.ReadAheadPages > 0 && !replaying {
		fs.readAhead(b, f, (off+done-1)/ps+1)
	}
	if fs.history != nil {
		fs.historyObserve(b, f, firstPage, (off+done-1)/ps)
	}
	return int(done), nil
}

// Write implements gwrite: a positional write of len(src) bytes at offset
// off. The data lands in the GPU buffer cache; it propagates to the host
// only on gfsync/gmsync or under cache pressure (§3.2). Each thread issues
// a memory fence when the write completes so a later page-out by DMA
// observes the data (§4.1).
func (fs *FS) writeImpl(b *gpu.Block, fd int, src []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset %d", ErrInvalid, off)
	}
	f, err := fs.lookupFd(fd)
	if err != nil {
		return 0, err
	}
	if !f.writable {
		return 0, fmt.Errorf("%w: %q", ErrReadOnly, f.path)
	}

	ps := fs.opt.PageSize
	want := int64(len(src))
	var done int64
	for done < want {
		cur := off + done
		pageIdx := cur / ps
		inPage := cur - pageIdx*ps
		n := ps - inPage
		if n > want-done {
			n = want - done
		}

		ref, err := fs.getPage(b, f, pageIdx)
		if err != nil {
			return int(done), err
		}
		ref.fr.Lock()
		// Checkpoint copy-on-write (ISSUE 10): with a capture installed,
		// preserve the pre-write page into the in-progress image before
		// the new bytes land. One atomic load when no checkpoint runs.
		if cc := fs.capture.Load(); cc != nil {
			fs.ckptCopyOnWrite(cc, f.fc, pageIdx, ref.fr)
		}
		b.CopyBytes(ref.fr.Data[inPage:inPage+n], src[done:done+n])
		extendValid(ref.fr, inPage+n)
		ref.fr.Unlock()
		ref.fr.Dirty.Store(true)
		ref.release()
		done += n
	}
	extendSize(f.fc, off+want)
	b.MemFence()
	return int(done), nil
}
