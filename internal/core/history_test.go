package core

import (
	"bytes"
	"fmt"
	"testing"

	"gpufs/internal/gpu"
	"gpufs/internal/rpc"
	"gpufs/internal/simtime"
)

// History-prefetch (ISSUE 9) tests: a file's first open records its
// page-access footprint; a later re-open replays it — pre-warming the
// recorded burst through vectored fetches before the demand reads arrive
// — and the replay must (a) be measurably faster than the cold adaptive
// detector, (b) reach the host as a few vectored RPCs rather than
// page-at-a-time probes, (c) die instantly when the host copy changed
// between opens, and (d) be bit-invisible when the knob is off.

const (
	histPagesA = 32 // the profiled file
	histPagesB = 64 // churn file: one full pool turnover (64-frame cache)
)

// histShape reads file A's footprint through fd — the access pattern the
// recorder captures and the replay must reproduce.
type histShape struct {
	name  string
	pages []int64 // first-touch order of A's page reads
}

func histShapes() []histShape {
	seq := make([]int64, histPagesA)
	for i := range seq {
		seq[i] = int64(i)
	}
	var stride4 []int64
	for p := int64(0); p < histPagesA; p += 4 {
		stride4 = append(stride4, p)
	}
	return []histShape{{"sequential", seq}, {"stride-4", stride4}}
}

func (s histShape) read(fs *FS, b *gpu.Block, fd int, ps int64, want []byte) error {
	buf := make([]byte, ps)
	for _, p := range s.pages {
		n, err := fs.Read(b, fd, buf, p*ps)
		if err != nil {
			return err
		}
		if int64(n) != ps || !bytes.Equal(buf, want[p*ps:(p+1)*ps]) {
			return fmt.Errorf("page %d: wrong bytes (n=%d)", p, n)
		}
	}
	return nil
}

// histRun is one record-churn-reopen workload execution.
type histRun struct {
	preludeEnd  simtime.Time // end of the record + churn kernel
	reopenEnd   simtime.Time // end of the re-open re-read kernel
	reopenReads int64        // OpReadPages RPCs issued by the re-open kernel
	cs          CacheStats
}

// runHistoryWorkload executes the canonical repeated-open workload on a
// fresh harness: kernel 1 reads A's footprint (recording the profile at
// close), then drags the whole 64-page file B through the 64-frame pool
// and unlinks it — evicting every one of A's pages and leaving the pool
// free — and kernel 2 re-opens A and re-reads the same footprint. The
// split lets the caller time the re-open in isolation and count its host
// reads.
func runHistoryWorkload(t *testing.T, historyOn bool, shape histShape) histRun {
	return runHistoryWorkloadOpt(t, historyOn, shape, nil)
}

func runHistoryWorkloadOpt(t *testing.T, historyOn bool, shape histShape, tweak func(*Options)) histRun {
	t.Helper()
	opt := defaultOpt()
	opt.ReadAheadAdaptive = true
	opt.HistoryPrefetch = historyOn
	if tweak != nil {
		tweak(&opt)
	}
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	ps := opt.PageSize
	wantA := pattern(histPagesA*int(ps), 3)
	wantB := pattern(histPagesB*int(ps), 4)
	h.write(t, "/a", wantA)
	h.write(t, "/b", wantB)

	end1, err := h.devs[0].Launch(0, 1, 64, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/a", O_RDONLY)
		if err != nil {
			return err
		}
		if err := shape.read(fs, b, fd, ps, wantA); err != nil {
			return err
		}
		if err := fs.Close(b, fd); err != nil {
			return err
		}
		fdb, err := fs.Open(b, "/b", O_RDONLY)
		if err != nil {
			return err
		}
		buf := make([]byte, histPagesB*ps)
		if _, err := fs.Read(b, fdb, buf, 0); err != nil {
			return err
		}
		if err := fs.Close(b, fdb); err != nil {
			return err
		}
		return fs.Unlink(b, "/b")
	})
	if err != nil {
		t.Fatalf("prelude kernel: %v", err)
	}

	reads := h.server.Requests(rpc.OpReadPages)
	end2, err := h.devs[0].Launch(end1, 1, 64, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/a", O_RDONLY)
		if err != nil {
			return err
		}
		if err := shape.read(fs, b, fd, ps, wantA); err != nil {
			return err
		}
		return fs.Close(b, fd)
	})
	if err != nil {
		t.Fatalf("reopen kernel: %v", err)
	}
	return histRun{
		preludeEnd:  end1,
		reopenEnd:   end2,
		reopenReads: h.server.Requests(rpc.OpReadPages) - reads,
		cs:          fs.CacheStats(),
	}
}

// TestHistoryReplayBeatsColdDetector is the ISSUE 9 acceptance bar: on the
// repeated-open workload the profile replay must beat the cold adaptive
// detector by at least 1.2x of re-open virtual time, for both a sequential
// and a strided footprint.
func TestHistoryReplayBeatsColdDetector(t *testing.T) {
	for _, shape := range histShapes() {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			on := runHistoryWorkload(t, true, shape)
			off := runHistoryWorkload(t, false, shape)

			// The first open has no profile to replay: recording is pure
			// host-side bookkeeping and must not move the virtual timeline.
			if on.preludeEnd != off.preludeEnd {
				t.Fatalf("recording pass changed the timeline: %v on vs %v off",
					on.preludeEnd, off.preludeEnd)
			}
			onRe := on.reopenEnd - on.preludeEnd
			offRe := off.reopenEnd - off.preludeEnd
			ratio := float64(offRe) / float64(onRe)
			t.Logf("reopen: %v with replay vs %v cold (%.2fx), %d vs %d host read RPCs",
				simtime.Duration(onRe), simtime.Duration(offRe), ratio,
				on.reopenReads, off.reopenReads)
			if ratio < 1.2 {
				t.Errorf("replay speedup %.2fx < 1.2x acceptance bar", ratio)
			}
			if on.cs.HistoryReplays != 1 {
				t.Errorf("HistoryReplays = %d, want 1", on.cs.HistoryReplays)
			}
			if on.cs.ReplayUsed == 0 {
				t.Errorf("replay issued %d pages but none were consumed", on.cs.ReplayIssued)
			}
		})
	}
}

// TestHistoryReplayIsVectored pins the mechanism, not just the outcome:
// the re-open's burst must reach the host as a few coalesced vectored
// ReadPages RPCs covering the recorded footprint, not one RPC per page.
// Small pages make the coalescing visible: the engine caps a span at
// raMaxSpanBytes, so at the default 16K pages a "span" is only 2 pages —
// at 4K pages a consecutive run rides 8 pages per RPC.
func TestHistoryReplayIsVectored(t *testing.T) {
	shape := histShapes()[0] // sequential: 32 pages
	run := runHistoryWorkloadOpt(t, true, shape, func(o *Options) {
		o.PageSize = 4 << 10
		o.CacheBytes = 64 * (4 << 10) // keep the 64-frame pool geometry
	})

	if run.cs.HistoryReplays != 1 {
		t.Fatalf("HistoryReplays = %d, want 1", run.cs.HistoryReplays)
	}
	// The whole footprint replays: every page of the burst is issued
	// speculatively (the trickle tops up as demand consumes the pre-warm).
	if run.cs.ReplayIssued < histPagesA/2 || run.cs.ReplayIssued > histPagesA {
		t.Errorf("ReplayIssued = %d, want within [%d, %d]",
			run.cs.ReplayIssued, histPagesA/2, histPagesA)
	}
	// Coalescing: consecutive burst pages ride one vectored RPC per
	// 8-page span, so the 32-page re-read needs far fewer host round
	// trips than pages. (Cold, the same re-read takes a demand fault or
	// probe per page until the detector's window opens.)
	if run.reopenReads > histPagesA/4 {
		t.Errorf("reopen issued %d ReadPages RPCs for a %d-page replay; burst is not vectored",
			run.reopenReads, histPagesA)
	}
}

// TestHistoryInvalidationOnHostWrite: an external host write between the
// recording open and the re-open bumps the file's generation; the stale
// profile must be dropped — no replay, no speculative reads — and the
// re-open must see the new bytes through the ordinary demand path.
func TestHistoryInvalidationOnHostWrite(t *testing.T) {
	opt := defaultOpt()
	opt.ReadAheadAdaptive = true
	opt.HistoryPrefetch = true
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	ps := opt.PageSize
	v1 := pattern(histPagesA*int(ps), 3)
	h.write(t, "/a", v1)

	end1, err := h.devs[0].Launch(0, 1, 64, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/a", O_RDONLY)
		if err != nil {
			return err
		}
		buf := make([]byte, len(v1))
		if _, err := fs.Read(b, fd, buf, 0); err != nil {
			return err
		}
		if !bytes.Equal(buf, v1) {
			return fmt.Errorf("first read: wrong bytes")
		}
		return fs.Close(b, fd)
	})
	if err != nil {
		t.Fatalf("recording kernel: %v", err)
	}

	// External host write: same path, same size, new content — only the
	// generation distinguishes it, which is exactly what the profile's
	// validation must check.
	v2 := pattern(histPagesA*int(ps), 9)
	h.write(t, "/a", v2)

	if _, err := h.devs[0].Launch(end1, 1, 64, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/a", O_RDONLY)
		if err != nil {
			return err
		}
		buf := make([]byte, len(v2))
		if _, err := fs.Read(b, fd, buf, 0); err != nil {
			return err
		}
		if !bytes.Equal(buf, v2) {
			return fmt.Errorf("reopen read: stale bytes survived the host write")
		}
		return fs.Close(b, fd)
	}); err != nil {
		t.Fatalf("reopen kernel: %v", err)
	}

	cs := fs.CacheStats()
	if cs.HistoryInvalidations != 1 {
		t.Errorf("HistoryInvalidations = %d, want 1", cs.HistoryInvalidations)
	}
	if cs.HistoryReplays != 0 || cs.ReplayIssued != 0 {
		t.Errorf("stale profile replayed anyway: %d replays, %d pages issued",
			cs.HistoryReplays, cs.ReplayIssued)
	}
}

// TestHistoryMetamorphicOnOff extends the metamorphic suite's contract to
// the ISSUE 9 knob: across read shapes and repeated open/close cycles, the
// bytes must be identical with HistoryPrefetch on and off, and the
// CacheStats must be identical once the speculation counters — the only
// state the engine is allowed to move — are masked out.
func TestHistoryMetamorphicOnOff(t *testing.T) {
	specFree := func(cs CacheStats) CacheStats {
		cs.PrefetchIssued, cs.PrefetchUsed, cs.PrefetchWasted = 0, 0, 0
		cs.ReplayIssued, cs.ReplayUsed, cs.ReplayWasted = 0, 0, 0
		cs.HistoryReplays, cs.HistoryInvalidations = 0, 0
		return cs
	}
	shapes := []struct {
		name  string
		pages []int64
	}{
		{"whole-file", func() []int64 {
			s := make([]int64, 12)
			for i := range s {
				s[i] = int64(i)
			}
			return s
		}()},
		{"strided", []int64{0, 3, 6, 9}},
		{"random", []int64{7, 2, 11, 5, 0, 9}},
	}
	const filePages = 12

	for _, shape := range shapes {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			var bytesBy [2][]byte
			var statsBy [2]CacheStats
			for i, on := range []bool{true, false} {
				opt := defaultOpt()
				opt.ReadAheadAdaptive = true
				opt.HistoryPrefetch = on
				h := newHarness(t, 1, opt)
				fs := h.fss[0]
				ps := opt.PageSize
				want := pattern(filePages*int(ps), 6)
				h.write(t, "/m", want)

				got := make([]byte, len(shape.pages)*int(ps))
				// Two open/close cycles: the second exercises replay when
				// the knob is on and must still produce identical bytes.
				start := simtime.Time(0)
				for cycle := 0; cycle < 2; cycle++ {
					end, err := h.devs[0].Launch(start, 1, 64, func(b *gpu.Block) error {
						fd, err := fs.Open(b, "/m", O_RDONLY)
						if err != nil {
							return err
						}
						for j, p := range shape.pages {
							if _, err := fs.Read(b, fd, got[j*int(ps):(j+1)*int(ps)], p*ps); err != nil {
								return err
							}
						}
						return fs.Close(b, fd)
					})
					if err != nil {
						t.Fatalf("cycle %d (history=%v): %v", cycle, on, err)
					}
					start = end
				}
				for j, p := range shape.pages {
					if !bytes.Equal(got[j*int(ps):(j+1)*int(ps)], want[p*ps:(p+1)*ps]) {
						t.Fatalf("history=%v: page %d bytes wrong", on, p)
					}
				}
				bytesBy[i] = got
				statsBy[i] = specFree(fs.CacheStats())
			}
			if !bytes.Equal(bytesBy[0], bytesBy[1]) {
				t.Errorf("bytes diverge between HistoryPrefetch on and off")
			}
			if statsBy[0] != statsBy[1] {
				t.Errorf("speculation-adjusted CacheStats diverge:\n on: %+v\noff: %+v",
					statsBy[0], statsBy[1])
			}
		})
	}
}
