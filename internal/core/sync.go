package core

import (
	"fmt"

	"gpufs/internal/core/pcache"
	"gpufs/internal/core/radix"
	"gpufs/internal/gpu"
	"gpufs/internal/gsys"
	"gpufs/internal/simtime"
	"gpufs/internal/trace"
)

// writeBackGap is how close two dirty ranges must be before write-back
// coalesces them into one RPC write.
const writeBackGap = 512

// writeBackFrame propagates a dirty page to the host through hostFd,
// sending only the bytes this GPU actually modified:
//
//   - O_GWRONCE pages diff against implicit zeros (no pristine copy is
//     stored), so write-back reduces to transferring non-zero ranges.
//   - Write-shared pages diff against the pristine copy preserved at first
//     read, so concurrent modifications of other portions of the same page
//     by other processors are not reverted (the false-sharing hazard of
//     §3.1).
//   - Exclusively written pages are sent whole over their valid extent.
//
// On return the frame is clean and, for write-shared pages, the pristine
// copy is advanced to the page's current content so future diffs are
// relative to this sync.
func (fs *FS) writeBackFrame(b *gpu.Block, hostFd int64, fr *pcache.Frame) error {
	return fs.writeBackFrameOn(fs.lane(b), b.Clock, hostFd, fr)
}

// writeBackFrameOn is writeBackFrame parameterized by the acting RPC lane
// and clock, so the background cleaner can write pages back on its own
// timeline instead of a faulting threadblock's.
func (fs *FS) writeBackFrameOn(lane *gsys.Client, clk *simtime.Clock, hostFd int64, fr *pcache.Frame) error {
	// Clear the dirty flag BEFORE snapshotting: a write racing with this
	// sync either lands in the snapshot (shipped now, re-flagged
	// harmlessly) or re-dirties the page for the next sync. Either way
	// nothing is lost.
	fr.Dirty.Store(false)
	data, pristine, valid := fr.Snapshot()
	base := fr.Offset.Load()

	var ranges []Range
	switch {
	case fr.WriteOnce.Load():
		ranges = nonZeroRanges(data, writeBackGap)
	case pristine != nil:
		ranges = diffRanges(data, pristine, writeBackGap)
	default:
		if valid > 0 {
			ranges = []Range{{0, valid}}
		}
	}

	for _, r := range ranges {
		if _, err := lane.WritePages(clk, hostFd, base+r.Start, data[r.Start:r.End]); err != nil {
			fr.Dirty.Store(true)
			return fmt.Errorf("gpufs: writing back page at %d: %w", base, err)
		}
	}
	if pristine != nil {
		fr.SetPristine(data)
	}
	return nil
}

// refreshGeneration re-reads the host file's generation after this GPU
// propagated writes, so the consistency layer keeps considering our cached
// copy current. If another processor wrote concurrently, the generations
// will not line up and the next gopen will (correctly) invalidate us.
func (fs *FS) refreshGeneration(b *gpu.Block, fc *fileCache, hostFd int64) {
	fs.refreshGenerationOn(fs.lane(b), b.Clock, fc, hostFd)
}

func (fs *FS) refreshGenerationOn(lane *gsys.Client, clk *simtime.Clock, fc *fileCache, hostFd int64) {
	info, err := lane.Stat(clk, hostFd)
	if err != nil {
		return // stale generation only costs an extra invalidation
	}
	fc.gen.Store(info.Generation)
	fs.client.RecordCached(fc.ino, info.Generation)
}

// Fsync implements gfsync: it synchronously writes back to the host every
// dirty page of the file that is not currently memory-mapped (Table 1 —
// mapped pages are the application's to gmsync). Pages merely referenced
// by a concurrent gread/gwrite or another block's gfsync ARE written
// back: the frame snapshot protocol makes that race-free, and skipping
// them would let this gfsync return success while the caller's own dirty
// bytes silently stay behind. It does not force the host to push the data
// to disk; see FsyncDisk for the stable-storage variant.
func (fs *FS) fsyncImpl(b *gpu.Block, fd int) error {
	f, err := fs.lookupFd(fd)
	if err != nil {
		return err
	}
	err = fs.syncFile(b, f.fc, f.hostFd, 0, -1)
	if err == nil {
		// Surface any asynchronous (eviction-driven) write-back failure
		// recorded since the last sync — exactly once.
		err = f.fc.takeWriteErr()
	}
	return err
}

// FsyncRange is gfsync restricted to the byte range [off, off+n): the
// paper's gfsync synchronizes "either an entire file or a specific offset
// range" (§3.2). Only dirty pages intersecting the range are written back.
func (fs *FS) FsyncRange(b *gpu.Block, fd int, off, n int64) error {
	start := b.Clock.Now()
	err := fs.fsyncRangeImpl(b, fd, off, n)
	fs.record(b, trace.OpFsync, fs.pathOf(fd), off, n, start, err)
	return err
}

func (fs *FS) fsyncRangeImpl(b *gpu.Block, fd int, off, n int64) error {
	if off < 0 || n < 0 {
		return fmt.Errorf("%w: fsync range [%d,+%d)", ErrInvalid, off, n)
	}
	f, err := fs.lookupFd(fd)
	if err != nil {
		return err
	}
	err = fs.syncFile(b, f.fc, f.hostFd, off, n)
	if err == nil {
		err = f.fc.takeWriteErr()
	}
	return err
}

// syncFile writes back dirty, unmapped pages intersecting [off, off+n);
// n < 0 means the whole file.
func (fs *FS) syncFile(b *gpu.Block, fc *fileCache, hostFd int64, off, n int64) error {
	var firstErr error
	wrote := false
	ps := fs.opt.PageSize
	fc.tree.ForEachReadyPage(func(idx uint64, p *radix.FPage) bool {
		if n >= 0 {
			pageOff := int64(idx) * ps
			if pageOff+ps <= off || pageOff >= off+n {
				return true // outside the requested range
			}
		}
		if p.Mapped() {
			// Memory-mapped; the application must gmsync such pages
			// itself (Table 1). A plain reference (mid-gread/gwrite, or a
			// concurrent gfsync) does NOT exempt the page: write-back
			// snapshots under the frame lock and clears the dirty flag
			// before snapshotting, so a racing writer's bytes either ship
			// now or re-dirty the page for its own gfsync — whereas
			// skipping here would silently break the durability contract
			// for whichever block gfsyncs while another is mid-flight.
			return true
		}
		if !p.TryRef() {
			return true
		}
		fi := p.Frame()
		if fi < 0 {
			p.Unref()
			return true
		}
		fr := fs.cache.Frame(fi)
		if fr.FileID.Load() != fc.tree.ID() || !fr.Dirty.Load() {
			p.Unref()
			return true
		}
		if err := fs.writeBackFrame(b, hostFd, fr); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			wrote = true
		}
		p.Unref()
		return true
	})
	if wrote {
		fs.refreshGeneration(b, fc, hostFd)
	}
	return firstErr
}

// FsyncDisk forces the file to stable storage: a gfsync to the host page
// cache followed by a host-side fsync to disk — the "forcing writes to
// stable storage, equivalent to fsync or msync on CPUs" of §3.3.
func (fs *FS) FsyncDisk(b *gpu.Block, fd int) error {
	if err := fs.Fsync(b, fd); err != nil {
		return err
	}
	f, err := fs.lookupFd(fd)
	if err != nil {
		return err
	}
	return fs.lane(b).Fsync(b.Clock, f.hostFd)
}
