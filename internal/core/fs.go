// Package core implements GPUfs itself: the GPU-side file system library of
// the paper. It maintains the open and closed file tables, the per-file
// buffer caches (radix trees over a shared frame pool), and implements the
// API of Table 1 — gopen, gclose, gread, gwrite, gfsync, gmmap, gmunmap,
// gmsync, gunlink, gfstat, gftruncate — with the paper's relaxed,
// data-parallel-friendly semantics:
//
//   - Calls are collective at threadblock granularity (the prototype's
//     granularity, §4): every thread of a block is assumed to reach the
//     call together, and the implementation is invoked once per block.
//   - File descriptors denote files, not opens: all blocks (and kernels)
//     opening the same file share one descriptor and one reference count.
//   - Reads and writes carry explicit offsets (pread/pwrite style); there
//     are no seek pointers.
//   - gclose does not synchronize; dirty pages reach the host only via
//     gfsync/gmsync or buffer-cache eviction.
//   - Consistency is locality-optimized and weak: pages cached on a GPU are
//     read and written locally; other processors observe the writes only
//     after a sync on the writer and a re-open on the reader.
package core

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"gpufs/internal/core/pcache"
	"gpufs/internal/core/radix"
	"gpufs/internal/gpu"
	"gpufs/internal/gsys"
	"gpufs/internal/hostfs"
	"gpufs/internal/memsys"
	"gpufs/internal/metrics"
	"gpufs/internal/rpc"
	"gpufs/internal/simtime"
	"gpufs/internal/trace"
)

// Open flags. The lower bits coincide with the host flags; the O_G* flags
// are the GPUfs-specific additions of §3.2.
const (
	O_RDONLY = hostfs.O_RDONLY
	O_WRONLY = hostfs.O_WRONLY
	O_RDWR   = hostfs.O_RDWR
	O_CREATE = hostfs.O_CREATE
	O_TRUNC  = hostfs.O_TRUNC

	// O_GWRONCE creates a write-only file in which the application
	// writes each byte at most once; GPUfs never fetches its content
	// from the CPU and write-back diffs against implicit zeros.
	O_GWRONCE = 0x10000
	// O_GWRSHARED opens a writable file for concurrent write-sharing
	// across processors using the general diff-and-merge protocol: a
	// pristine copy is kept per page and only locally modified bytes are
	// propagated at sync. (The paper describes this protocol in §3.1 and
	// leaves it unimplemented in the prototype; this implementation
	// includes it.)
	O_GWRSHARED = 0x20000
	// O_NOSYNC creates a temporary file private to this GPU: its data is
	// never written back except under cache pressure, and it is unlinked
	// from the host on final close.
	O_NOSYNC = 0x40000

	hostFlagMask = 0xFFFF
)

// Options configures one GPU's GPUfs instance.
type Options struct {
	// PageSize is the buffer-cache page size.
	PageSize int64
	// CacheBytes is the buffer-cache capacity (raw data array size).
	CacheBytes int64
	// APICostPerPage is the virtual cost of per-page bookkeeping.
	APICostPerPage simtime.Duration
	// RadixLookupLockFree and RadixLookupLocked are per-attempt lookup
	// costs; locked lookups additionally serialize on the file's tree.
	RadixLookupLockFree simtime.Duration
	RadixLookupLocked   simtime.Duration
	// ForceLockedTraversal disables the lock-free read protocol,
	// reproducing Figure 7's locked baseline.
	ForceLockedTraversal bool
	// ReadAheadPages, when positive, makes gread prefetch that many
	// pages beyond each read asynchronously — one of the optimizations
	// the paper notes a GPU buffer cache enables (§3.3). The prototype
	// ships with it off; the ablation bench quantifies it.
	ReadAheadPages int
	// ReadAheadAdaptive replaces the greedy window with the per-open-file
	// pattern detector of ISSUE 4: sequential or strided access streaks
	// ramp a speculation window up Linux-style (and wasted prefetch
	// shrinks it), stride-1 windows coalesce into multi-page RPCs, and
	// random access speculates nothing. Takes precedence over
	// ReadAheadPages; false restores the greedy (or no) read-ahead path
	// bit-identically.
	ReadAheadAdaptive bool
	// HistoryPrefetch layers the per-file access-history engine of ISSUE 9
	// over the detector: each open's first-touch burst and confirmed
	// strides are recorded into a bounded FS-level profile table, and a
	// re-open of an unchanged file (same host generation and size)
	// replays them — burst pages pre-warm through vectored RPCs, detector
	// slots start confident. Off disables recording and replay
	// bit-identically.
	HistoryPrefetch bool
	// CleanerWorkers is the number of background writeback-cleaner lanes.
	// When the free-frame pool drops below the low watermark, a demand
	// fault kicks an idle lane, which — on its own virtual clock, so the
	// faulting threadblock pays nothing — writes back cold dirty pages and
	// pre-evicts closed-file frames until the high watermark. 0 disables
	// the cleaner (all write-back happens synchronously under eviction,
	// as before ISSUE 4).
	CleanerWorkers int
	// DisableFastReopen forces every gopen to take the full host-RPC
	// path even when the closed file table holds a valid cache
	// (ablation: the cost of the closed-table optimization of §4.1).
	DisableFastReopen bool
	// EvictBatch is how many pages one paging pass tries to reclaim.
	EvictBatch int
	// ZeroCopyRead makes cache-hit reads serve bytes by aliasing the
	// pinned page frame (one device-memory pass — the gmmap mechanism)
	// instead of a two-pass copy through a staging buffer, and makes the
	// host daemon pread RPC completions directly into the pinned DMA
	// region (skipping the staging pass on the host memory bus). The flag
	// also propagates to the client's rpc server. Off restores the
	// copying path bit-identically.
	ZeroCopyRead bool
	// FrameShards is the number of free-list shards in the frame
	// allocator; lanes hash to shards and steal on empty. Values < 1
	// select 1 (the single-LIFO allocator, bit-identical to PR 7).
	FrameShards int
	// CkptMaxBytes bounds the bytes a checkpoint may capture by value
	// (dirty pages plus pipe buffers); a capture that would exceed it
	// fails with ckpt.ErrBudget and the caller falls back to
	// drain+restart. 0 means unlimited.
	CkptMaxBytes int64
	// Metrics, when non-nil, attaches this GPU's counters and latency
	// histograms to the registry. Metrics are observation-only: they
	// record virtual timestamps already computed by the simulation and
	// never acquire resources, so timing is bit-identical with or without
	// them. Nil keeps every hook at a single pointer test.
	Metrics *metrics.Registry
	// Syscalls is the host syscall service (table + pipes) shared by the
	// system's GPUs. Nil builds a private service over the client's
	// server — file semantics are identical; only cross-GPU pipes need
	// the shared table.
	Syscalls *gsys.Service
	// SyscallOrdering selects the default ordering class workloads see
	// through Config(); the file API itself always issues strong where
	// the paper's semantics require it. Parsed by gsys.ParseOrdering.
	SyscallOrdering gsys.Ordering
}

// FS is the GPUfs instance of a single GPU: the top software layer of
// Figure 2, resident in GPU memory and linked into the application kernel.
type FS struct {
	gpuID  int
	opt    Options
	client *rpc.Client
	sys    *gsys.Client
	cache  *pcache.Cache

	mu     sync.Mutex
	byPath map[string]int // path -> fd for open files
	fds    []*file        // fd -> open file (nil when slot closed)
	closed map[int64]*fileCache
	// closedByPath indexes the closed file table by pathname for the
	// fast-reopen check in Open.
	closedByPath map[string]int64
	// truncated records paths already truncated by an O_TRUNC open, so a
	// re-open by a late-scheduled threadblock (after the reference count
	// transiently hit zero, §3.2) does not destroy earlier blocks'
	// output by truncating again.
	truncated map[string]bool

	// Retired-tree stats accumulate counters of trees that were
	// invalidated or unlinked, so totals survive cache discards.
	retiredLockFree atomic.Int64
	retiredLocked   atomic.Int64

	opens        atomic.Int64
	hostOpens    atomic.Int64
	closedReuses atomic.Int64

	// Speculation and cleaning accounting (ISSUE 4): pages issued by
	// read-ahead, pages consumed by a later demand access, pages
	// reclaimed unconsumed, pages the background cleaner made clean or
	// free, and cleaner wake-ups.
	prefetchIssued atomic.Int64
	prefetchUsed   atomic.Int64
	prefetchWasted atomic.Int64
	cleanedPages   atomic.Int64
	cleanerKicks   atomic.Int64

	// History-prefetch accounting (ISSUE 9): pages issued by profile
	// replay (a subset of prefetchIssued), their used/wasted outcomes,
	// opens that replayed a profile, and profiles dropped because the
	// host copy changed between opens.
	replayIssued         atomic.Int64
	replayUsed           atomic.Int64
	replayWasted         atomic.Int64
	historyReplays       atomic.Int64
	historyInvalidations atomic.Int64

	// history is the per-file access-profile table of the ISSUE 9
	// history-prefetch engine; nil when Options.HistoryPrefetch is off.
	history *historyTable

	// specPending gauges speculative pages currently in the cache that no
	// demand access has consumed yet. The adaptive engine caps it at a
	// quarter of the frame pool, so speculation can never thrash resident
	// demand data out of a tight cache.
	specPending atomic.Int64

	// cacheHits and cacheMisses count getPage outcomes: a hit finds the
	// page resident, a miss faults it in (the initializer path).
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// zeroCopyReads counts cache-hit page reads served by aliasing the
	// pinned frame (one device-memory pass) instead of the two-pass copy.
	// Kept out of CacheStats: the metamorphic suite asserts CacheStats
	// equality across the ZeroCopyRead knob.
	zeroCopyReads atomic.Int64

	// gpread_warp accounting (ISSUE 7): calls, warps coalesced into one
	// descriptor, and total descriptors issued.
	warpReadCalls   atomic.Int64
	warpCoalesced   atomic.Int64
	warpDescriptors atomic.Int64

	// capture is the in-progress checkpoint's copy-on-write rendezvous
	// (ISSUE 10); nil whenever no checkpoint is running, which keeps the
	// gwrite hot path at a single atomic load.
	capture atomic.Pointer[ckptCapture]

	// Checkpoint accounting (ISSUE 10): bytes captured by value, pages
	// preserved by the write-fault hook, by-reference pages dropped at
	// commit validation, and captured page counts by class.
	ckptSnapshotBytes   atomic.Int64
	ckptCoWFaults       atomic.Int64
	ckptValidationDrops atomic.Int64
	ckptPagesDirty      atomic.Int64
	ckptPagesClean      atomic.Int64

	// pipeNames maps pipe handles to names for tracing (guarded by mu).
	pipeNames map[int64]string

	// met holds pre-resolved metrics handles; nil when Options.Metrics is.
	met *fsMetrics

	// cleaner is the background writeback engine; nil when
	// Options.CleanerWorkers is 0.
	cleaner *cleaner

	// tracer, when non-nil and enabled, records every API call.
	tracer *trace.Tracer
}

// file is an entry in the open file table.
type file struct {
	fc *fileCache

	path      string
	flags     int
	writeOnce bool
	writeShrd bool
	noSync    bool
	writable  bool
	readable  bool
	unlinked  bool // gunlink'd while open; discard cache at final close

	hostFd int64
	refs   int // threadblock reference count

	// opening coordination: concurrent gopens of the same file coalesce
	// into one host open; waiters block on ready.
	ready chan struct{}
	err   error

	// ra are the adaptive read-ahead detector slots: threadblocks hash by
	// index, so each slot sees one (or a few) blocks' access stream
	// rather than the chaotic interleaving of all of them — the reason
	// the paper dismissed per-file stride detection (§3.3).
	ra [raStreams]raStream

	// rec and replay are this open's history-prefetch state (ISSUE 9):
	// rec accumulates the first-touch burst for the profile recorded at
	// close; replay drives the pre-warm of a previously recorded profile.
	// Both nil when the engine is off (or, for replay, no profile
	// matched).
	rec    *histRecorder
	replay *replayState
}

// fileCache is a file's GPU-resident cache state. It survives gclose in the
// closed file table (keyed by host inode) so that threadblocks scheduled
// later — or subsequent kernels of the same process — reuse the cached
// pages (§4.1, §5.1.3).
type fileCache struct {
	tree    *radix.Tree
	lockRes *simtime.Resource // serializes locked traversals in virtual time

	ino  int64
	path string

	// gen is the host generation the cache contents correspond to,
	// refreshed after this GPU propagates writes.
	gen atomic.Int64

	// size is the file size as seen by gfstat: captured at the first
	// gopen and extended by local writes.
	size atomic.Int64

	// frames counts resident pages, so the eviction policy can skip
	// empty caches cheaply.
	frames atomic.Int64

	// keepFd is the host descriptor retained after the last gclose (the
	// open file table stores "the CPU file descriptor used for data
	// requests", §4.1, and keeping it is what makes reopening a
	// closed-table entry free of CPU communication); 0 when none.
	// Atomic: mutated on reuse/discard paths that run outside the table
	// lock while the paging victim scan reads it.
	keepFd atomic.Int64
	// lastFlags records the flags of the retired open, so a reopen with
	// identical flags can take the fast path.
	lastFlags int

	// prefetchUsed and prefetchWasted count this file's speculative pages
	// consumed by a demand access versus reclaimed unconsumed; the
	// adaptive read-ahead window uses the ratio as its feedback signal.
	prefetchUsed   atomic.Int64
	prefetchWasted atomic.Int64

	// wbErr is the sticky asynchronous write-back error (POSIX errseq_t
	// semantics): when eviction-driven write-back fails, the error is
	// recorded here and surfaced exactly once — at the next gfsync, or at
	// the final gclose if no sync intervenes.
	wbMu  sync.Mutex
	wbErr error
}

// recordWriteErr notes an asynchronous write-back failure; the first error
// wins until a sync reports it.
func (fc *fileCache) recordWriteErr(err error) {
	if err == nil {
		return
	}
	fc.wbMu.Lock()
	if fc.wbErr == nil {
		fc.wbErr = err
	}
	fc.wbMu.Unlock()
}

// takeWriteErr returns the pending write-back error and clears it, so each
// failure is reported exactly once.
func (fc *fileCache) takeWriteErr() error {
	fc.wbMu.Lock()
	err := fc.wbErr
	fc.wbErr = nil
	fc.wbMu.Unlock()
	return err
}

// New creates the GPUfs instance for one GPU, carving the buffer cache out
// of the device's memory arena.
func New(gpuID int, opt Options, client *rpc.Client, mem *memsys.Arena) (*FS, error) {
	if opt.EvictBatch <= 0 {
		opt.EvictBatch = 16
	}
	if opt.FrameShards < 1 {
		opt.FrameShards = 1
	}
	cache, err := pcache.NewSharded(mem, opt.CacheBytes, opt.PageSize, opt.FrameShards)
	if err != nil {
		return nil, err
	}
	// The host half of the zero-copy read path lives in the daemon (the
	// staging pass skipped in gsys/rpc read handlers); every GPU of a
	// system is built with the same Options, so the per-FS store is
	// idempotent.
	client.Server().SetZeroCopyRead(opt.ZeroCopyRead)
	svc := opt.Syscalls
	if svc == nil {
		svc = gsys.NewService(client.Server())
	}
	fs := &FS{
		gpuID:        gpuID,
		opt:          opt,
		client:       client,
		sys:          gsys.NewClient(svc, client),
		cache:        cache,
		byPath:       make(map[string]int),
		closed:       make(map[int64]*fileCache),
		closedByPath: make(map[string]int64),
		truncated:    make(map[string]bool),
	}
	if opt.CleanerWorkers > 0 {
		fs.cleaner = newCleaner(fs, opt.CleanerWorkers)
	}
	if opt.HistoryPrefetch {
		fs.history = newHistoryTable(histMaxFiles)
	}
	if opt.Metrics != nil {
		fs.attachMetrics(opt.Metrics)
	}
	return fs, nil
}

// fsMetrics holds one GPU's pre-resolved instrument handles. Only the op
// histograms sit on a hot path; the counters are func collectors over the
// atomics the FS maintains anyway, so enabling metrics adds no per-call
// work beyond the histogram observations.
type fsMetrics struct {
	// op is indexed by trace.Op; entries are nil for ops this layer never
	// records (serve-level ops, faults, retries).
	op []*metrics.Histogram
}

// attachMetrics registers the FS's counters with the registry and resolves
// the per-op latency histogram handles. Histogram op labels reuse the trace
// package's op names (gopen, gread, ...), so metrics and traces agree.
func (fs *FS) attachMetrics(reg *metrics.Registry) {
	gpuL := strconv.Itoa(fs.gpuID)
	reg.SetHelp("gpufs_core_op_seconds", "Virtual latency of GPUfs API calls, labelled by op name")
	reg.SetHelp("gpufs_core_cache_hits_total", "Buffer-cache page accesses served from a resident frame")
	reg.SetHelp("gpufs_core_cache_misses_total", "Buffer-cache page accesses that faulted the page in")
	reg.SetHelp("gpufs_core_evictions_total", "Frames reclaimed by the paging algorithm")
	reg.SetHelp("gpufs_core_prefetch_issued_total", "Pages issued speculatively by read-ahead")
	reg.SetHelp("gpufs_core_prefetch_used_total", "Speculative pages later consumed by a demand access")
	reg.SetHelp("gpufs_core_prefetch_wasted_total", "Speculative pages reclaimed unconsumed")
	reg.SetHelp("gpufs_core_cleaned_pages_total", "Pages the background cleaner wrote back or pre-evicted")
	reg.SetHelp("gpufs_core_cleaner_kicks_total", "Background-cleaner wake-ups")
	reg.SetHelp("gpufs_core_opens_total", "gopen calls")
	reg.SetHelp("gpufs_core_host_opens_total", "gopen calls forwarded to the CPU")
	reg.SetHelp("gpufs_core_closed_reuses_total", "Reopens served from the closed file table")
	reg.SetHelp("gpufs_core_spec_pending", "Speculative pages resident but not yet consumed")
	reg.SetHelp("gpufs_core_zero_copy_reads_total", "Cache-hit page reads served in place from the pinned frame")
	reg.SetHelp("gpufs_core_frame_steals_total", "Frame allocations satisfied by stealing from another shard")
	reg.SetHelp("gpufs_core_leaf_recycles_total", "Radix leaves reused from the epoch-reclaimed pool")
	reg.SetHelp("gpufs_core_replay_issued_total", "Pages issued by history-profile replay")
	reg.SetHelp("gpufs_core_replay_used_total", "Replayed pages later consumed by a demand access")
	reg.SetHelp("gpufs_core_replay_wasted_total", "Replayed pages reclaimed unconsumed")
	reg.SetHelp("gpufs_core_history_replays_total", "Opens that replayed a recorded access profile")
	reg.SetHelp("gpufs_core_history_invalidations_total", "Profiles dropped because the host copy changed between opens")
	reg.SetHelp("gpufs_ckpt_snapshot_bytes_total", "Bytes captured by value into checkpoint images")
	reg.SetHelp("gpufs_ckpt_cow_faults_total", "Pages preserved by the checkpoint copy-on-write write hook")
	reg.SetHelp("gpufs_ckpt_validation_drops_total", "Speculated clean pages dropped at commit because the host moved")
	reg.SetHelp("gpufs_ckpt_pages_dirty_total", "Dirty pages captured by value into checkpoint images")
	reg.SetHelp("gpufs_ckpt_pages_clean_total", "Clean pages captured by reference that survived validation")

	reg.CounterFunc("gpufs_core_cache_hits_total", fs.cacheHits.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_cache_misses_total", fs.cacheMisses.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_evictions_total", fs.cache.Reclaimed, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_prefetch_issued_total", fs.prefetchIssued.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_prefetch_used_total", fs.prefetchUsed.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_prefetch_wasted_total", fs.prefetchWasted.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_cleaned_pages_total", fs.cleanedPages.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_cleaner_kicks_total", fs.cleanerKicks.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_opens_total", fs.opens.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_host_opens_total", fs.hostOpens.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_closed_reuses_total", fs.closedReuses.Load, "gpu", gpuL)
	reg.GaugeFunc("gpufs_core_spec_pending", fs.specPending.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_zero_copy_reads_total", fs.zeroCopyReads.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_frame_steals_total", fs.cache.Steals, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_leaf_recycles_total", fs.leafRecycles, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_replay_issued_total", fs.replayIssued.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_replay_used_total", fs.replayUsed.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_replay_wasted_total", fs.replayWasted.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_history_replays_total", fs.historyReplays.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_core_history_invalidations_total", fs.historyInvalidations.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_ckpt_snapshot_bytes_total", fs.ckptSnapshotBytes.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_ckpt_cow_faults_total", fs.ckptCoWFaults.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_ckpt_validation_drops_total", fs.ckptValidationDrops.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_ckpt_pages_dirty_total", fs.ckptPagesDirty.Load, "gpu", gpuL)
	reg.CounterFunc("gpufs_ckpt_pages_clean_total", fs.ckptPagesClean.Load, "gpu", gpuL)

	m := &fsMetrics{op: make([]*metrics.Histogram, int(trace.OpPipeClose)+1)}
	for _, op := range []trace.Op{
		trace.OpOpen, trace.OpClose, trace.OpRead, trace.OpWrite,
		trace.OpFsync, trace.OpMmap, trace.OpMunmap, trace.OpMsync,
		trace.OpUnlink, trace.OpFstat, trace.OpFtruncate,
		trace.OpEvict, trace.OpPrefetch, trace.OpClean,
		trace.OpReaddir, trace.OpReadWarp,
		trace.OpPipeOpen, trace.OpPipeRead, trace.OpPipeWrite, trace.OpPipeClose,
	} {
		m.op[op] = reg.DurationHistogram("gpufs_core_op_seconds",
			"gpu", gpuL, "op", op.String())
	}
	fs.met = m
}

// observeOp records an op's virtual span; a no-op when metrics are off or
// the op is not instrumented at this layer.
func (m *fsMetrics) observeOp(op trace.Op, start, end simtime.Time) {
	if m == nil || int(op) >= len(m.op) {
		return
	}
	m.op[op].ObserveSpan(start, end)
}

// GPUID reports the owning GPU's index.
func (fs *FS) GPUID() int { return fs.gpuID }

// PageSize reports the buffer-cache page size.
func (fs *FS) PageSize() int64 { return fs.opt.PageSize }

// Cache exposes the frame pool (stats and tests).
func (fs *FS) Cache() *pcache.Cache { return fs.cache }

// Client exposes the RPC transport endpoint (stats and tests).
func (fs *FS) Client() *rpc.Client { return fs.client }

// Syscalls exposes the syscall endpoint (workloads and tests).
func (fs *FS) Syscalls() *gsys.Client { return fs.sys }

// lane returns the syscall client view bound to the block's home ring
// shard, so a threadblock's calls keep FIFO order on one ring while
// blocks on different shards overlap across daemon workers. Strong
// ordering (the default for every call below) rides the per-lane fence.
func (fs *FS) lane(b *gpu.Block) *gsys.Client { return fs.sys.Bind(b.Idx) }

// newFileCache builds an empty cache for a file.
func (fs *FS) newFileCache(path string, ino, gen, size int64) *fileCache {
	fc := &fileCache{
		tree:    radix.NewTree(),
		lockRes: simtime.NewResource(fmt.Sprintf("gpu%d-treelock-%d", fs.gpuID, ino)),
		ino:     ino,
		path:    path,
	}
	fc.tree.SetForceLocked(fs.opt.ForceLockedTraversal)
	fc.gen.Store(gen)
	fc.size.Store(size)
	return fc
}

// Open implements gopen. All threads of the block invoke it collectively;
// the call runs once per block. Concurrent opens of the same file coalesce:
// one block performs the host open, the rest wait and share the descriptor,
// which then merely has its reference count incremented (§3.2, §4.1).
func (fs *FS) openImpl(b *gpu.Block, path string, flags int) (int, error) {
	fs.opens.Add(1)
	b.Busy(fs.opt.APICostPerPage) // control-plane bookkeeping

	writeOnce := flags&O_GWRONCE != 0
	writeShrd := flags&O_GWRSHARED != 0
	noSync := flags&O_NOSYNC != 0
	if writeOnce && writeShrd {
		return -1, fmt.Errorf("%w: O_GWRONCE with O_GWRSHARED", ErrBadFlags)
	}

	acc := flags & 0x3
	if writeOnce {
		acc = O_WRONLY
	}
	writable := acc == O_WRONLY || acc == O_RDWR
	readable := acc == O_RDONLY || acc == O_RDWR
	if (writeOnce || writeShrd || noSync) && !writable {
		return -1, fmt.Errorf("%w: GPUfs write flags require a writable mode", ErrBadFlags)
	}

	for {
		fs.mu.Lock()
		if fd, ok := fs.byPath[path]; ok {
			f := fs.fds[fd]
			ready := f.ready
			fs.mu.Unlock()
			<-ready // coalesce with the in-flight open
			fs.mu.Lock()
			// Identity check, not just slot occupancy: the entry may
			// have been retired while we waited AND its fd slot and
			// path reused by a brand-new (still-pending) open — we
			// must not adopt an entry we never waited on.
			if fs.byPath[path] != fd || fs.fds[fd] != f {
				fs.mu.Unlock()
				continue // restart against the current table state
			}
			if f.err != nil {
				err := f.err
				fs.mu.Unlock()
				return -1, err
			}
			if f.flags != flags {
				fs.mu.Unlock()
				return -1, fmt.Errorf("%w: %q open with flags %#x, requested %#x",
					ErrFlagConflict, path, f.flags, flags)
			}
			f.refs++
			fs.mu.Unlock()
			return fd, nil
		}

		// Fast path: the file is in the closed file table with matching
		// flags, and the consistency layer's shared-memory generation
		// table confirms our cached copy is current — move the cache
		// back to the open file table with no CPU round trip (§4.1).
		if ino, ok := fs.closedByPath[path]; ok && !fs.opt.DisableFastReopen {
			fc := fs.closed[ino]
			if fc != nil && fc.lastFlags == flags && fc.keepFd.Load() != 0 &&
				fs.client.PeekValid(b.Clock, fc.ino, fc.gen.Load()) {
				delete(fs.closed, ino)
				delete(fs.closedByPath, path)
				ready := make(chan struct{})
				close(ready)
				f := &file{
					fc:        fc,
					path:      path,
					flags:     flags,
					writeOnce: writeOnce,
					writeShrd: writeShrd,
					noSync:    noSync,
					writable:  writable,
					readable:  readable,
					hostFd:    fc.keepFd.Load(),
					refs:      1,
					ready:     ready,
				}
				fc.keepFd.Store(0)
				fd := fs.allocFdLocked(f)
				fs.byPath[path] = fd
				fs.mu.Unlock()

				if writable {
					if err := fs.client.BeginWrite(fc.ino, writeShrd || writeOnce); err != nil {
						fs.mu.Lock()
						fs.fds[fd] = nil
						delete(fs.byPath, path)
						fc.keepFd.Store(f.hostFd)
						fs.closed[fc.ino] = fc
						fs.closedByPath[path] = fc.ino
						fs.mu.Unlock()
						return -1, err
					}
				}
				fs.closedReuses.Add(1)
				fs.historyAttach(b, f)
				return fd, nil
			}
		}

		// We are the opener: insert a pending entry and do the host work
		// outside the table lock.
		f := &file{
			path:      path,
			flags:     flags,
			writeOnce: writeOnce,
			writeShrd: writeShrd,
			noSync:    noSync,
			writable:  writable,
			readable:  readable,
			refs:      1,
			ready:     make(chan struct{}),
		}
		fd := fs.allocFdLocked(f)
		fs.byPath[path] = fd
		fs.mu.Unlock()

		err := fs.hostOpen(b, f)
		if err != nil {
			fs.mu.Lock()
			fs.fds[fd] = nil
			delete(fs.byPath, path)
			f.err = err
			fs.mu.Unlock()
			close(f.ready)
			return -1, err
		}
		fs.historyAttach(b, f)
		close(f.ready)
		return fd, nil
	}
}

func (fs *FS) allocFdLocked(f *file) int {
	for i, slot := range fs.fds {
		if slot == nil {
			fs.fds[i] = f
			return i
		}
	}
	fs.fds = append(fs.fds, f)
	return len(fs.fds) - 1
}

// hostOpen forwards the first gopen of a file to the CPU, consults the
// closed file table for a reusable cache, validates it against the
// consistency layer, and registers write intent.
func (fs *FS) hostOpen(b *gpu.Block, f *file) error {
	fs.hostOpens.Add(1)

	// Writable files other than O_GWRONCE are opened read-write on the
	// host regardless of the GPU-visible mode: partial-page writes need
	// read-modify-write fetches, and the diff-and-merge protocol needs
	// pristine copies.
	hostFlags := f.flags & hostFlagMask
	if hostFlags&hostfs.O_TRUNC != 0 {
		fs.mu.Lock()
		if fs.truncated[f.path] {
			hostFlags &^= hostfs.O_TRUNC
		} else {
			fs.truncated[f.path] = true
		}
		fs.mu.Unlock()
	}
	switch {
	case f.writeOnce:
		hostFlags = (hostFlags &^ 0x3) | hostfs.O_WRONLY | hostfs.O_CREATE
	case f.writable:
		hostFlags = (hostFlags &^ 0x3) | hostfs.O_RDWR
	}
	if f.noSync {
		hostFlags |= hostfs.O_CREATE
	}
	hfd, info, err := fs.lane(b).Open(b.Clock, f.path, hostFlags, hostfs.ModeRead|hostfs.ModeWrite)
	if err != nil {
		return err
	}

	if f.writable {
		// O_GWRONCE files may be write-shared across processors: each
		// byte is written at most once and diff-against-zeros merges
		// disjoint updates (§3.1). Other writes are single-writer
		// unless opened O_GWRSHARED.
		if err := fs.client.BeginWrite(info.Ino, f.writeShrd || f.writeOnce); err != nil {
			fs.lane(b).Close(b.Clock, hfd)
			return err
		}
	}

	// Check the closed file table first: if this GPU still caches the
	// file and the consistency layer confirms the host copy is
	// unchanged, move the cache back to the open file table (§4.1).
	fs.mu.Lock()
	fc, cached := fs.closed[info.Ino]
	if cached {
		delete(fs.closed, info.Ino)
		delete(fs.closedByPath, fc.path)
	}
	fs.mu.Unlock()

	if cached {
		valid := fs.lane(b).Validate(b.Clock, info.Ino, fc.gen.Load())
		if valid && info.Generation == fc.gen.Load() {
			fs.closedReuses.Add(1)
			// Replace any retained write-back descriptor with the
			// fresh one.
			if old := fc.keepFd.Swap(0); old != 0 {
				fs.lane(b).Close(b.Clock, old)
			}
			f.fc = fc
			f.hostFd = hfd
			return nil
		}
		// Stale: discard the cached pages (lazy invalidation, §4.4).
		fs.discardCache(b, fc)
	}

	f.fc = fs.newFileCache(f.path, info.Ino, info.Generation, info.Size)
	f.hostFd = hfd
	fs.client.RecordCached(info.Ino, info.Generation)
	return nil
}

// Close implements gclose: it decrements the file's reference count and, at
// zero, retires the entry to the closed file table with its pages retained
// for reuse. No data is propagated to the host (§3.2); dirty pages wait for
// gfsync or eviction.
func (fs *FS) closeImpl(b *gpu.Block, fd int) error {
	b.Busy(fs.opt.APICostPerPage)

	fs.mu.Lock()
	f, err := fs.fileLocked(fd)
	if err != nil {
		fs.mu.Unlock()
		return err
	}
	f.refs--
	if f.refs > 0 {
		fs.mu.Unlock()
		return nil
	}
	// Last reference: retire to the closed table, retaining the pages
	// AND the host descriptor so a matching reopen is free.
	fs.fds[fd] = nil
	delete(fs.byPath, f.path)
	fc := f.fc
	if old, ok := fs.closed[fc.ino]; ok && old != fc {
		fs.discardCache(b, old)
	}
	if staleIno, ok := fs.closedByPath[f.path]; ok && staleIno != fc.ino {
		if stale := fs.closed[staleIno]; stale != nil {
			delete(fs.closed, staleIno)
			defer fs.discardCache(b, stale)
		}
	}
	fs.closed[fc.ino] = fc
	fs.closedByPath[f.path] = fc.ino
	fc.keepFd.Store(f.hostFd)
	fc.lastFlags = f.flags
	fs.mu.Unlock()

	if fs.history != nil {
		fs.historyRecord(f)
	}

	if f.writable {
		fs.client.EndWrite(fc.ino)
	}

	if f.noSync || f.unlinked {
		// Temporary or unlinked file: never written back; reclaim
		// local pages immediately.
		fs.mu.Lock()
		delete(fs.closed, fc.ino)
		delete(fs.closedByPath, f.path)
		fc.keepFd.Store(0)
		fs.mu.Unlock()
		fs.discardCache(b, fc)
		fs.lane(b).Close(b.Clock, f.hostFd)
		if f.noSync && !f.unlinked {
			return fs.lane(b).Unlink(b.Clock, f.path)
		}
		return fc.takeWriteErr()
	}

	// Final close surfaces any asynchronous write-back error that no
	// gfsync reported (POSIX: close is the last chance to learn the data
	// didn't make it).
	return fc.takeWriteErr()
}

func (fs *FS) fileLocked(fd int) (*file, error) {
	if fd < 0 || fd >= len(fs.fds) || fs.fds[fd] == nil {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return fs.fds[fd], nil
}

// lookupFd returns the open file for fd.
func (fs *FS) lookupFd(fd int) (*file, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.fileLocked(fd)
}

// discardCache drops every resident page of fc without write-back
// (invalidation or unlink) and retires the tree's stats.
func (fs *FS) discardCache(b *gpu.Block, fc *fileCache) {
	fc.tree.ForEachReadyPage(func(_ uint64, p *radix.FPage) bool {
		for !p.TryEvict() {
			if !p.Ready() {
				// A concurrent paging pass already took it.
				return true
			}
			// Briefly referenced (invalidation runs at open time,
			// so holders are transient); wait it out.
			runtime.Gosched()
		}
		if fi := p.Frame(); fi >= 0 {
			fr := fs.cache.Frame(fi)
			fs.noteSpecDrop(fc, fr)
			fs.cache.Release(fr, false)
			fc.frames.Add(-1)
		}
		p.FinishEvict()
		return true
	})
	lf, lk := fc.tree.Stats()
	fs.retiredLockFree.Add(lf)
	fs.retiredLocked.Add(lk)
	if old := fc.keepFd.Swap(0); old != 0 {
		fs.lane(b).Close(b.Clock, old)
	}
	fs.client.Forget(fc.ino)
}

// ResidentPages reports how many buffer-cache pages of path are resident
// on this GPU, whether the file is currently open or retired to the closed
// file table. A serving layer uses it as its cache-affinity signal: a job
// over a file with resident pages is cheaper to run here than anywhere
// else.
func (fs *FS) ResidentPages(path string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fd, ok := fs.byPath[path]; ok {
		if f := fs.fds[fd]; f != nil && f.fc != nil {
			return f.fc.frames.Load()
		}
	}
	if ino, ok := fs.closedByPath[path]; ok {
		if fc := fs.closed[ino]; fc != nil {
			return fc.frames.Load()
		}
	}
	return 0
}

// Stats aggregates instrumentation across live and retired file caches.
type Stats struct {
	// LockFreeAccesses and LockedAccesses count radix-tree lookups by
	// protocol (Table 2; the locked count includes unlocked retries that
	// fell back).
	LockFreeAccesses int64
	LockedAccesses   int64
	// PagesReclaimed counts frames reclaimed by the paging algorithm.
	PagesReclaimed int64
	// Opens counts gopen calls; HostOpens counts those forwarded to the
	// CPU (the difference is coalescing plus reference counting).
	Opens     int64
	HostOpens int64
	// ClosedTableReuses counts reopens served from the closed file table.
	ClosedTableReuses int64
	// RPCRequests is the total RPC count to the host daemon.
	RPCRequests int64
	// RPCRetries and RPCTimeouts count the retry protocol's activity
	// (nonzero only under fault injection).
	RPCRetries  int64
	RPCTimeouts int64
	// FaultsInjected is the machine-wide injected-fault total.
	FaultsInjected int64
}

// noteSpecDrop records a speculative page leaving the cache before any
// demand access consumed it — wasted prefetch, the adaptive window's
// shrink signal. Reports whether the page was indeed unconsumed.
func (fs *FS) noteSpecDrop(fc *fileCache, fr *pcache.Frame) bool {
	switch fr.Spec.Swap(pcache.SpecNone) {
	case pcache.SpecPending:
		fs.prefetchWasted.Add(1)
		fc.prefetchWasted.Add(1)
		fs.specPending.Add(-1)
		return true
	case pcache.SpecReplay:
		fs.prefetchWasted.Add(1)
		fc.prefetchWasted.Add(1)
		fs.replayWasted.Add(1)
		fs.specPending.Add(-1)
		return true
	}
	return false
}

// CacheStats are the speculation and cleaning counters of ISSUE 4,
// surfaced per GPU by the serving layer next to its affinity hit rate.
type CacheStats struct {
	// PrefetchIssued counts pages issued speculatively by read-ahead
	// (adaptive or greedy). Multi-page gread batching is NOT counted:
	// those pages are known-needed pipelining, not a guess.
	PrefetchIssued int64
	// PrefetchUsed counts speculative pages later consumed by a demand
	// access; PrefetchWasted counts those reclaimed unconsumed.
	PrefetchUsed   int64
	PrefetchWasted int64
	// CleanedPages counts pages the background cleaner wrote back or
	// pre-evicted; CleanerKicks counts cleaner wake-ups.
	CleanedPages int64
	CleanerKicks int64
	// ReplayIssued/Used/Wasted count history-profile replay pages (a
	// subset of the Prefetch* counters above); HistoryReplays counts
	// opens that replayed a profile, and HistoryInvalidations counts
	// profiles dropped because the host copy changed between opens
	// (ISSUE 9).
	ReplayIssued         int64
	ReplayUsed           int64
	ReplayWasted         int64
	HistoryReplays       int64
	HistoryInvalidations int64
}

// CkptStats are the checkpoint engine's counters (ISSUE 10).
type CkptStats struct {
	// SnapshotBytes counts bytes captured by value into images.
	SnapshotBytes int64
	// CoWFaults counts pages preserved by the gwrite copy-on-write hook
	// (writes that raced the snapshot walk).
	CoWFaults int64
	// ValidationDrops counts by-reference clean pages dropped at commit
	// because the host (ino, generation) moved underneath.
	ValidationDrops int64
	// PagesDirty and PagesClean count captured pages by class.
	PagesDirty int64
	PagesClean int64
}

// CkptStats snapshots the checkpoint counters.
func (fs *FS) CkptStats() CkptStats {
	return CkptStats{
		SnapshotBytes:   fs.ckptSnapshotBytes.Load(),
		CoWFaults:       fs.ckptCoWFaults.Load(),
		ValidationDrops: fs.ckptValidationDrops.Load(),
		PagesDirty:      fs.ckptPagesDirty.Load(),
		PagesClean:      fs.ckptPagesClean.Load(),
	}
}

// ZeroCopyReads reports how many cache-hit page reads were served in place
// from the pinned frame (zero when the ZeroCopyRead knob is off).
func (fs *FS) ZeroCopyReads() int64 { return fs.zeroCopyReads.Load() }

// FrameSteals reports allocations satisfied by stealing a frame from
// another shard's free list (0 with a single shard).
func (fs *FS) FrameSteals() int64 { return fs.cache.Steals() }

// leafRecycles sums recycled-leaf counts across live and closed file
// caches (metrics collector; recycling only happens under churn).
func (fs *FS) leafRecycles() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var n int64
	for _, f := range fs.fds {
		if f != nil && f.fc != nil {
			n += f.fc.tree.Recycles()
		}
	}
	for _, fc := range fs.closed {
		n += fc.tree.Recycles()
	}
	return n
}

// CacheStats snapshots the speculation and cleaning counters.
func (fs *FS) CacheStats() CacheStats {
	return CacheStats{
		PrefetchIssued:       fs.prefetchIssued.Load(),
		PrefetchUsed:         fs.prefetchUsed.Load(),
		PrefetchWasted:       fs.prefetchWasted.Load(),
		CleanedPages:         fs.cleanedPages.Load(),
		CleanerKicks:         fs.cleanerKicks.Load(),
		ReplayIssued:         fs.replayIssued.Load(),
		ReplayUsed:           fs.replayUsed.Load(),
		ReplayWasted:         fs.replayWasted.Load(),
		HistoryReplays:       fs.historyReplays.Load(),
		HistoryInvalidations: fs.historyInvalidations.Load(),
	}
}

// Snapshot gathers current statistics.
func (fs *FS) Snapshot() Stats {
	s := Stats{
		LockFreeAccesses:  fs.retiredLockFree.Load(),
		LockedAccesses:    fs.retiredLocked.Load(),
		PagesReclaimed:    fs.cache.Reclaimed(),
		Opens:             fs.opens.Load(),
		HostOpens:         fs.hostOpens.Load(),
		ClosedTableReuses: fs.closedReuses.Load(),
		RPCRetries:        fs.client.Retries(),
		RPCTimeouts:       fs.client.Timeouts(),
	}
	fs.mu.Lock()
	for _, f := range fs.fds {
		if f != nil && f.fc != nil {
			lf, lk := f.fc.tree.Stats()
			s.LockFreeAccesses += lf
			s.LockedAccesses += lk
		}
	}
	for _, fc := range fs.closed {
		lf, lk := fc.tree.Stats()
		s.LockFreeAccesses += lf
		s.LockedAccesses += lk
	}
	fs.mu.Unlock()
	return s
}

// Restart models the GPU-card restart of §3.3: a GPU software failure can
// require restarting the card, "thus losing the GPU's entire memory
// state". Every open descriptor becomes invalid, every cached page —
// including dirty data never synchronized — is discarded, and the host is
// told to forget this GPU's caches. Data previously propagated by gfsync
// or gmsync survives on the host (the failure semantics of the CPU page
// cache).
func (fs *FS) Restart(b *gpu.Block) {
	fs.mu.Lock()
	open := fs.fds
	closed := fs.closed
	fs.fds = nil
	fs.byPath = make(map[string]int)
	fs.closed = make(map[int64]*fileCache)
	fs.closedByPath = make(map[string]int64)
	fs.truncated = make(map[string]bool)
	fs.mu.Unlock()

	// Profiles describe caches that died with the card; the next open
	// re-records from scratch.
	if fs.history != nil {
		fs.history.clear()
	}

	for _, f := range open {
		if f == nil || f.fc == nil {
			continue
		}
		if f.writable {
			fs.client.EndWrite(f.fc.ino)
		}
		fs.dropCacheNoWriteback(f.fc)
		fs.lane(b).Close(b.Clock, f.hostFd)
	}
	for _, fc := range closed {
		fs.dropCacheNoWriteback(fc)
		if old := fc.keepFd.Swap(0); old != 0 {
			fs.lane(b).Close(b.Clock, old)
		}
	}
}

// dropCacheNoWriteback releases every frame of fc without propagating any
// dirty data — the content is gone with the card.
func (fs *FS) dropCacheNoWriteback(fc *fileCache) {
	fc.tree.ForEachReadyPage(func(_ uint64, p *radix.FPage) bool {
		for !p.TryEvict() {
			if !p.Ready() {
				return true
			}
			runtime.Gosched()
		}
		if fi := p.Frame(); fi >= 0 {
			fr := fs.cache.Frame(fi)
			fs.noteSpecDrop(fc, fr)
			fs.cache.Release(fr, false)
			fc.frames.Add(-1)
		}
		p.FinishEvict()
		return true
	})
	fs.client.Forget(fc.ino)
}
