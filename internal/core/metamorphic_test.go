package core

import (
	"bytes"
	"fmt"
	"testing"

	"gpufs/internal/gpu"
)

// Metamorphic read-path tests: the same extent fetched through different
// call shapes — one vectored whole-file gread (whose multi-page batching
// pipelines the later pages' fetches), multi-page chunked greads,
// page-at-a-time greads, and odd-sized chunks that straddle page
// boundaries — must yield identical bytes under every read-ahead policy
// (off, greedy, adaptive). With read-ahead off the post-run CacheStats
// must also be identical across shapes: multi-page gread batching is
// known-needed pipelining, not speculation, so it must never leak into the
// prefetch counters. Finally, every (shape, policy) pair must be
// deterministic: two fresh runs agree on bytes and CacheStats.

// readShape reads the whole file into dst using one particular call shape.
type readShape struct {
	name string
	read func(fs *FS, b *gpu.Block, fd int, dst []byte) error
}

func chunkedRead(fs *FS, b *gpu.Block, fd int, dst []byte, chunk int) error {
	for off := 0; off < len(dst); off += chunk {
		n := chunk
		if off+n > len(dst) {
			n = len(dst) - off
		}
		got, err := fs.Read(b, fd, dst[off:off+n], int64(off))
		if err != nil {
			return err
		}
		if got != n {
			return fmt.Errorf("short read at %d: %d of %d", off, got, n)
		}
	}
	return nil
}

func readShapes(pageSize int) []readShape {
	return []readShape{
		{"whole", func(fs *FS, b *gpu.Block, fd int, dst []byte) error {
			return chunkedRead(fs, b, fd, dst, len(dst))
		}},
		{"three-pages", func(fs *FS, b *gpu.Block, fd int, dst []byte) error {
			return chunkedRead(fs, b, fd, dst, 3*pageSize)
		}},
		{"single-page", func(fs *FS, b *gpu.Block, fd int, dst []byte) error {
			return chunkedRead(fs, b, fd, dst, pageSize)
		}},
		{"odd-chunks", func(fs *FS, b *gpu.Block, fd int, dst []byte) error {
			return chunkedRead(fs, b, fd, dst, 3333)
		}},
	}
}

// readPolicy is one read-ahead configuration.
type readPolicy struct {
	name     string
	apply    func(*Options)
	specFree bool // no speculation: CacheStats must match across shapes
}

var readPolicies = []readPolicy{
	{"off", func(o *Options) {}, true},
	{"greedy", func(o *Options) { o.ReadAheadPages = 4 }, false},
	{"adaptive", func(o *Options) { o.ReadAheadAdaptive = true }, false},
}

// runShape executes one (shape, policy) run on a fresh harness and returns
// the bytes read and the post-run CacheStats.
func runShape(t *testing.T, pol readPolicy, shape readShape, want []byte) ([]byte, CacheStats) {
	t.Helper()
	opt := defaultOpt()
	pol.apply(&opt)
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	h.write(t, "/meta", want)

	got := make([]byte, len(want))
	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/meta", O_RDONLY)
		if err != nil {
			return err
		}
		if err := shape.read(fs, b, fd, got); err != nil {
			return fmt.Errorf("shape %s: %w", shape.name, err)
		}
		return fs.Close(b, fd)
	})
	return got, fs.CacheStats()
}

func TestMetamorphicReadShapes(t *testing.T) {
	opt := defaultOpt()
	want := pattern(10*int(opt.PageSize)+777, 5) // ~10.05 pages
	shapes := readShapes(int(opt.PageSize))

	for _, pol := range readPolicies {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			var baseline CacheStats
			for si, shape := range shapes {
				got, cs := runShape(t, pol, shape, want)
				if !bytes.Equal(got, want) {
					t.Errorf("shape %s: bytes diverge", shape.name)
				}
				// Two fresh runs of the same shape must agree exactly.
				got2, cs2 := runShape(t, pol, shape, want)
				if !bytes.Equal(got, got2) {
					t.Errorf("shape %s: bytes differ between identical runs", shape.name)
				}
				if cs != cs2 {
					t.Errorf("shape %s: CacheStats differ between identical runs: %+v vs %+v", shape.name, cs, cs2)
				}
				if !pol.specFree {
					continue
				}
				// No read-ahead: batching is known-needed pipelining and
				// must not register as speculation, so every shape lands
				// on identical (all-zero prefetch) stats.
				if cs.PrefetchIssued != 0 {
					t.Errorf("shape %s: %d pages counted as prefetch with read-ahead off", shape.name, cs.PrefetchIssued)
				}
				if si == 0 {
					baseline = cs
				} else if cs != baseline {
					t.Errorf("shape %s: CacheStats %+v diverge from shape %s's %+v",
						shape.name, cs, shapes[0].name, baseline)
				}
			}
		})
	}
}
