package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"gpufs/internal/ckpt"
	"gpufs/internal/gpu"
)

// ckptPage returns the dirty PageImage for index idx, or nil.
func ckptPage(fi *ckpt.FileImage, idx int64) *ckpt.PageImage {
	for i := range fi.Dirty {
		if fi.Dirty[i].Index == idx {
			return &fi.Dirty[i]
		}
	}
	return nil
}

func ckptHasClean(fi *ckpt.FileImage, idx int64) bool {
	for _, c := range fi.Clean {
		if c == idx {
			return true
		}
	}
	return false
}

// TestCkptRoundTrip is the basic capture/restore cycle: dirty pages travel
// by value, clean pages by validated reference, and a reopen on the
// restored host observes exactly the source's view.
func TestCkptRoundTrip(t *testing.T) {
	opt := defaultOpt()
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	ps := int(opt.PageSize)

	orig := pattern(3*ps, 1)
	h.write(t, "/ck-a", orig)

	overlay := pattern(ps, 99)
	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/ck-a", O_RDWR)
		if err != nil {
			return err
		}
		buf := make([]byte, len(orig))
		if _, err := fs.Read(b, fd, buf, 0); err != nil {
			return err
		}
		if _, err := fs.Write(b, fd, overlay, int64(ps)); err != nil {
			return err
		}
		return fs.Close(b, fd)
	})

	img, end, err := fs.CheckpointImage(0)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if end <= 0 {
		t.Errorf("checkpoint actor clock did not advance: end=%v", end)
	}
	if len(img.Files) != 1 {
		t.Fatalf("image has %d files, want 1", len(img.Files))
	}
	fi := &img.Files[0]
	pg := ckptPage(fi, 1)
	if pg == nil {
		t.Fatalf("page 1 not captured dirty; dirty=%v clean=%v", len(fi.Dirty), fi.Clean)
	}
	if !bytes.Equal(pg.Data[:ps], overlay) {
		t.Error("dirty page 1 content diverges from the written bytes")
	}
	if !ckptHasClean(fi, 0) || !ckptHasClean(fi, 2) {
		t.Errorf("clean pages 0,2 not captured by reference: clean=%v", fi.Clean)
	}
	if ckptHasClean(fi, 1) {
		t.Error("dirty page 1 also listed clean")
	}
	st := fs.CkptStats()
	if st.PagesDirty < 1 || st.PagesClean < 2 || st.SnapshotBytes < int64(ps) {
		t.Errorf("ckpt stats off: %+v", st)
	}

	// Restore onto a fresh host holding the ORIGINAL content (the dirty
	// overlay never reached the source host — it is the image's payload).
	h2 := newHarness(t, 1, opt)
	h2.write(t, "/ck-a", orig)
	h2.run(t, 0, func(b *gpu.Block) error {
		return h2.fss[0].RestoreImage(b, img)
	})

	want := append([]byte(nil), orig...)
	copy(want[ps:], overlay)
	h2.run(t, 0, func(b *gpu.Block) error {
		fd, err := h2.fss[0].Open(b, "/ck-a", O_RDWR)
		if err != nil {
			return err
		}
		buf := make([]byte, len(want))
		n, err := h2.fss[0].Read(b, fd, buf, 0)
		if err != nil {
			return err
		}
		if n != len(want) || !bytes.Equal(buf[:n], want) {
			t.Errorf("restored view diverges from source view (%d/%d bytes equal-len)", n, len(want))
		}
		return h2.fss[0].Close(b, fd)
	})
	// The restored host must not have adopted the dirty overlay: only a
	// gfsync propagates.
	if got := h2.read(t, "/ck-a"); !bytes.Equal(got, orig) {
		t.Error("restore leaked dirty pages to the new host's file")
	}
}

// TestCkptCoWPreWriteCut pins the copy-on-write cut: a gwrite racing the
// snapshot must preserve the PRE-write content in the image, and the walk
// must not overwrite that earlier cut with post-write bytes.
func TestCkptCoWPreWriteCut(t *testing.T) {
	opt := defaultOpt()
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	ps := int(opt.PageSize)

	h.write(t, "/ck-cow", pattern(2*ps, 3))
	before := pattern(ps, 50)
	after := pattern(ps, 51)

	var fd int
	h.run(t, 0, func(b *gpu.Block) error {
		var err error
		fd, err = fs.Open(b, "/ck-cow", O_RDWR)
		if err != nil {
			return err
		}
		_, err = fs.Write(b, fd, before, 0)
		return err
	})

	ck, err := fs.BeginCheckpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	// This write lands while the capture is installed: the hook must copy
	// the pre-write page before the new bytes overwrite it.
	h.run(t, 0, func(b *gpu.Block) error {
		_, err := fs.Write(b, fd, after, 0)
		return err
	})
	ck.Walk()
	img, err := ck.Commit()
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if len(img.Files) != 1 {
		t.Fatalf("image has %d files, want 1", len(img.Files))
	}
	pg := ckptPage(&img.Files[0], 0)
	if pg == nil {
		t.Fatal("page 0 missing from the image")
	}
	if !bytes.Equal(pg.Data[:ps], before) {
		if bytes.Equal(pg.Data[:ps], after) {
			t.Fatal("image holds the POST-write content: the CoW cut failed")
		}
		t.Fatal("image page 0 matches neither pre- nor post-write content")
	}
	if st := fs.CkptStats(); st.CoWFaults < 1 {
		t.Errorf("CoWFaults = %d, want >= 1", st.CoWFaults)
	}
	h.run(t, 0, func(b *gpu.Block) error { return fs.Close(b, fd) })
}

// TestCkptCoWCleanReference: a write hitting a still-clean page during the
// capture records it by reference exactly once (hook and walk dedup
// through the done set).
func TestCkptCoWCleanReference(t *testing.T) {
	opt := defaultOpt()
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	ps := int(opt.PageSize)

	h.write(t, "/ck-clean", pattern(2*ps, 9))
	var fd int
	h.run(t, 0, func(b *gpu.Block) error {
		var err error
		fd, err = fs.Open(b, "/ck-clean", O_RDWR)
		if err != nil {
			return err
		}
		buf := make([]byte, 2*ps)
		_, err = fs.Read(b, fd, buf, 0) // both pages resident, clean
		return err
	})

	ck, err := fs.BeginCheckpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	h.run(t, 0, func(b *gpu.Block) error {
		_, err := fs.Write(b, fd, pattern(ps, 77), 0)
		return err
	})
	ck.Walk()
	img, err := ck.Commit()
	if err != nil {
		t.Fatal(err)
	}
	fi := &img.Files[0]
	n := 0
	for _, c := range fi.Clean {
		if c == 0 {
			n++
		}
	}
	if n != 1 {
		t.Errorf("pre-write clean page 0 recorded %d times by reference, want 1 (clean=%v)", n, fi.Clean)
	}
	if ckptPage(fi, 0) != nil {
		t.Error("page 0 was clean at the cut; it must not travel by value")
	}
	h.run(t, 0, func(b *gpu.Block) error { return fs.Close(b, fd) })
}

// TestCkptBudget: a capture exceeding CkptMaxBytes fails with ErrBudget
// and uninstalls itself, leaving the hot path unhooked.
func TestCkptBudget(t *testing.T) {
	opt := defaultOpt()
	opt.CkptMaxBytes = 1
	h := newHarness(t, 1, opt)
	fs := h.fss[0]

	h.write(t, "/ck-budget", pattern(int(opt.PageSize), 4))
	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/ck-budget", O_RDWR)
		if err != nil {
			return err
		}
		if _, err := fs.Write(b, fd, pattern(int(opt.PageSize), 5), 0); err != nil {
			return err
		}
		return fs.Close(b, fd)
	})

	if _, _, err := fs.CheckpointImage(0); !errors.Is(err, ckpt.ErrBudget) {
		t.Fatalf("checkpoint with 1-byte budget: err = %v, want ErrBudget", err)
	}
	if fs.capture.Load() != nil {
		t.Fatal("failed checkpoint left the capture installed")
	}
}

// TestCkptValidationDrop: a retired file whose host generation moved after
// the GPU cached it is condemned data — the commit must drop it from the
// image entirely (clean refs AND dirty pages), because the source's own
// next reopen would discard that view.
func TestCkptValidationDrop(t *testing.T) {
	opt := defaultOpt()
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	ps := int(opt.PageSize)

	h.write(t, "/ck-stale", pattern(2*ps, 6))
	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/ck-stale", O_RDWR)
		if err != nil {
			return err
		}
		buf := make([]byte, ps)
		if _, err := fs.Read(b, fd, buf, 0); err != nil {
			return err
		}
		if _, err := fs.Write(b, fd, pattern(ps, 7), int64(ps)); err != nil {
			return err
		}
		return fs.Close(b, fd)
	})

	// External host write after the close: generation moves, the closed
	// view is condemned.
	h.write(t, "/ck-stale", pattern(2*ps, 8))

	img, _, err := fs.CheckpointImage(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range img.Files {
		if img.Files[i].Path == "/ck-stale" {
			t.Fatalf("stale retired file still in the image: dirty=%d clean=%d",
				len(img.Files[i].Dirty), len(img.Files[i].Clean))
		}
	}
	if st := fs.CkptStats(); st.ValidationDrops < 1 {
		t.Errorf("ValidationDrops = %d, want >= 1", st.ValidationDrops)
	}
}

// TestCkptWbErrRoundTrip: the sticky write-back error mark survives the
// migration — the tenant's first gfsync on the restored host still learns
// the source's data never hit the disk.
func TestCkptWbErrRoundTrip(t *testing.T) {
	opt := defaultOpt()
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	ps := int(opt.PageSize)

	h.write(t, "/ck-wb", pattern(ps, 2))
	var fd int
	h.run(t, 0, func(b *gpu.Block) error {
		var err error
		fd, err = fs.Open(b, "/ck-wb", O_RDWR)
		if err != nil {
			return err
		}
		_, err = fs.Write(b, fd, pattern(ps, 3), 0)
		return err
	})
	f, err := fs.lookupFd(fd)
	if err != nil {
		t.Fatal(err)
	}
	f.fc.recordWriteErr(errors.New("simulated async write-back EIO"))

	img, _, err := fs.CheckpointImage(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Files) != 1 || img.Files[0].WbErr == "" {
		t.Fatalf("errseq mark missing from the image: %+v", img.Files)
	}
	// Peeked, not consumed: the source still owes the error too.
	h.run(t, 0, func(b *gpu.Block) error {
		if err := fs.Fsync(b, fd); err == nil {
			t.Error("source fsync after checkpoint lost the write-back error")
		}
		return fs.Close(b, fd)
	})

	h2 := newHarness(t, 1, opt)
	h2.write(t, "/ck-wb", pattern(ps, 2))
	h2.run(t, 0, func(b *gpu.Block) error {
		return h2.fss[0].RestoreImage(b, img)
	})
	h2.run(t, 0, func(b *gpu.Block) error {
		fd, err := h2.fss[0].Open(b, "/ck-wb", O_RDWR)
		if err != nil {
			return err
		}
		err = h2.fss[0].Fsync(b, fd)
		if err == nil {
			t.Error("restored host's first fsync did not surface the migrated write-back error")
		} else if !strings.Contains(err.Error(), "simulated async write-back EIO") {
			t.Errorf("restored fsync error = %v, want the source's mark", err)
		}
		return h2.fss[0].Close(b, fd)
	})
}

// TestCkptHistoryProfileRoundTrip: the history-prefetch table migrates, so
// the replacement host's first opens replay the source's footprints.
func TestCkptHistoryProfileRoundTrip(t *testing.T) {
	opt := defaultOpt()
	opt.HistoryPrefetch = true
	h := newHarness(t, 1, opt)
	fs := h.fss[0]

	prof := &histProfile{
		size:    1 << 20,
		gen:     1,
		burst:   []int64{0, 1, 2, 7},
		strides: []histStride{{slot: 3, stride: 2, window: 8}},
	}
	fs.history.store("/ck-hist", prof)

	img, _, err := fs.CheckpointImage(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Profiles) != 1 || img.Profiles[0].Path != "/ck-hist" {
		t.Fatalf("profile not exported: %+v", img.Profiles)
	}

	h2 := newHarness(t, 1, opt)
	h2.run(t, 0, func(b *gpu.Block) error {
		return h2.fss[0].RestoreImage(b, img)
	})
	got := h2.fss[0].history.lookup("/ck-hist")
	if got == nil {
		t.Fatal("profile missing after restore")
	}
	if got.size != prof.size || got.gen != prof.gen ||
		len(got.burst) != len(prof.burst) || len(got.strides) != 1 ||
		got.strides[0] != prof.strides[0] {
		t.Errorf("restored profile diverges: %+v vs %+v", got, prof)
	}
}

// TestCkptBeginConflict: one capture at a time; Abort frees the slot.
func TestCkptBeginConflict(t *testing.T) {
	h := newHarness(t, 1, defaultOpt())
	fs := h.fss[0]
	ck, err := fs.BeginCheckpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.BeginCheckpoint(0); !errors.Is(err, ErrCheckpointActive) {
		t.Fatalf("second begin: err = %v, want ErrCheckpointActive", err)
	}
	ck.Abort()
	ck2, err := fs.BeginCheckpoint(0)
	if err != nil {
		t.Fatalf("begin after abort: %v", err)
	}
	ck2.Abort()
}
