package core

import (
	"fmt"
	"io"

	"gpufs/internal/core/pcache"
	"gpufs/internal/gpu"
	"gpufs/internal/gsys"
	"gpufs/internal/hostfs"
	"gpufs/internal/simtime"
	"gpufs/internal/trace"
)

// The generic syscall surface of ISSUE 7, layered on the gsys dispatcher:
// open-ahead (relaxed pipelined gopen), greaddir (paginated directory
// enumeration), gpread_warp (warp-granularity coalesced positioned reads),
// and the gpipe family (bounded kernel-to-kernel pipes brokered by the
// host daemon).

// --- Open-ahead -------------------------------------------------------

// OpenFuture is the join handle of an OpenAhead. Exactly one Wait is
// required: the eager path holds the opened file's reference until Wait
// transfers it to the caller.
type OpenFuture struct {
	fs    *FS
	path  string
	flags int
	start simtime.Time

	// eager marks a successfully issued relaxed open; fd and fut are
	// valid. Otherwise Wait performs a normal strong Open.
	eager bool
	fd    int
	fut   *gsys.Future
}

// OpenAhead issues gopen ahead of need: for a cold read-only open it
// dispatches the host open as a relaxed non-blocking syscall — the block's
// clock does not wait for the round trip, which Wait joins later — so a
// kernel can pipeline the opens of its next few inputs behind the current
// file's reads. Files already known to this GPU (open or in the closed
// file table), non-read-only flags, and relaxed-issue failures all fall
// back to a plain strong Open at Wait time, preserving the file API's
// semantics exactly.
func (fs *FS) OpenAhead(b *gpu.Block, path string, flags int) *OpenFuture {
	of := &OpenFuture{fs: fs, path: path, flags: flags, start: b.Clock.Now()}
	if flags != O_RDONLY {
		return of
	}
	fs.mu.Lock()
	if _, ok := fs.byPath[path]; ok {
		fs.mu.Unlock()
		return of
	}
	if _, ok := fs.closedByPath[path]; ok {
		fs.mu.Unlock()
		return of
	}
	// Cold open: insert the pending open-table entry (so concurrent
	// gopens coalesce onto this open, exactly as with a strong opener)
	// and issue the host open past the fence.
	f := &file{
		path:     path,
		flags:    flags,
		readable: true,
		refs:     1,
		ready:    make(chan struct{}),
	}
	fd := fs.allocFdLocked(f)
	fs.byPath[path] = fd
	fs.mu.Unlock()

	fs.opens.Add(1)
	b.Busy(fs.opt.APICostPerPage) // control-plane bookkeeping, as in gopen

	fut := fs.lane(b).OpenRelaxed(b.Clock, path, flags&hostFlagMask, hostfs.ModeRead|hostfs.ModeWrite)
	if fut.Err() != nil {
		// Relaxed issues are never retried: retract the pending entry and
		// let Wait run the strong (retrying) open path instead.
		fs.mu.Lock()
		fs.fds[fd] = nil
		delete(fs.byPath, path)
		f.err = fut.Err()
		fs.mu.Unlock()
		close(f.ready)
		return of
	}
	fs.hostOpens.Add(1)
	reply := fut.Reply()
	info := reply.Info

	// A cached copy of the same inode under another name (the
	// closedByPath probe above is by pathname) is lazily invalidated, as
	// hostOpen does for stale caches.
	fs.mu.Lock()
	fc, cached := fs.closed[info.Ino]
	if cached {
		delete(fs.closed, info.Ino)
		delete(fs.closedByPath, fc.path)
	}
	fs.mu.Unlock()
	if cached {
		fs.discardCache(b, fc)
	}

	f.fc = fs.newFileCache(path, info.Ino, info.Generation, info.Size)
	f.hostFd = reply.FD
	fs.client.RecordCached(info.Ino, info.Generation)
	close(f.ready)

	of.eager, of.fd, of.fut = true, fd, fut
	return of
}

// Wait joins the open: the block's clock advances to the host open's
// virtual completion and the descriptor is returned, its reference now
// owned by the caller (gclose releases it). Fallback futures perform a
// normal strong Open here.
func (of *OpenFuture) Wait(b *gpu.Block) (int, error) {
	if !of.eager {
		return of.fs.Open(b, of.path, of.flags)
	}
	of.fut.Wait(b.Clock)
	of.fs.record(b, trace.OpOpen, of.path, 0, 0, of.start, nil)
	return of.fd, nil
}

// --- greaddir ---------------------------------------------------------

// Dirent is one directory entry as enumerated by Readdir.
type Dirent struct {
	Name  string
	Ino   int64
	Size  int64
	IsDir bool
}

// readdirImpl enumerates one page of host directory entries.
func (fs *FS) readdirImpl(b *gpu.Block, path string, cookie int64, max int) ([]Dirent, int64, error) {
	if max <= 0 {
		return nil, 0, fmt.Errorf("%w: non-positive readdir page size %d", ErrInvalid, max)
	}
	b.Busy(fs.opt.APICostPerPage)
	infos, next, err := fs.lane(b).Readdir(b.Clock, path, cookie, max)
	if err != nil {
		return nil, 0, err
	}
	out := make([]Dirent, len(infos))
	for i, fi := range infos {
		out[i] = Dirent{Name: fi.Name, Ino: fi.Ino, Size: fi.Size, IsDir: fi.IsDir}
	}
	return out, next, nil
}

// --- gpread_warp ------------------------------------------------------

// WarpReq is one thread's positioned read within a gpread_warp call.
type WarpReq struct {
	Dst []byte
	Off int64
}

// warpContiguous reports whether the warp's requests form one ascending
// contiguous span, the pattern the coalescer turns into a single
// descriptor.
func warpContiguous(warp []WarpReq) bool {
	for i, r := range warp {
		if len(r.Dst) == 0 || r.Off < 0 {
			return false
		}
		if i > 0 && r.Off != warp[i-1].Off+int64(len(warp[i-1].Dst)) {
			return false
		}
	}
	return true
}

// readWarpImpl services one positioned read per thread, coalescing each
// warp whose requests form a contiguous ascending span into ONE syscall
// descriptor: the span's pages beyond the first ride a single vectored
// relaxed RPC (stamped warp-granularity on the wire) issued before the
// copy loop, so the whole warp pays one descriptor's API cost instead of
// one per thread. Warps with gaps, overlaps, or descending offsets fall
// back to per-thread gread semantics. Returns the total bytes read.
func (fs *FS) readWarpImpl(b *gpu.Block, fd int, reqs []WarpReq) (int64, error) {
	fs.warpReadCalls.Add(1)
	if len(reqs) == 0 {
		return 0, nil
	}
	f, err := fs.lookupFd(fd)
	if err != nil {
		return 0, err
	}
	if !f.readable {
		return 0, fmt.Errorf("%w: %q", ErrWriteOnly, f.path)
	}

	ws := b.Device().WarpSize()
	var total int64
	for wstart := 0; wstart < len(reqs); wstart += ws {
		wend := wstart + ws
		if wend > len(reqs) {
			wend = len(reqs)
		}
		warp := reqs[wstart:wend]
		if warpContiguous(warp) {
			fs.warpCoalesced.Add(1)
			fs.warpDescriptors.Add(1)
			n, err := fs.warpSpanRead(b, f, warp)
			total += n
			if err != nil {
				return total, err
			}
			continue
		}
		// Divergent warp: per-thread fallback, one descriptor each.
		for _, r := range warp {
			fs.warpDescriptors.Add(1)
			n, err := fs.readImpl(b, fd, r.Dst, r.Off)
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// warpSpanRead reads one coalesced warp span, scattering the bytes into
// the per-thread destination buffers.
func (fs *FS) warpSpanRead(b *gpu.Block, f *file, warp []WarpReq) (int64, error) {
	off := warp[0].Off
	var want int64
	for _, r := range warp {
		want += int64(len(r.Dst))
	}
	size := f.fc.size.Load()
	if off >= size {
		return 0, nil
	}
	if off+want > size {
		want = size - off
	}
	ps := fs.opt.PageSize
	firstPage := off / ps
	lastPage := (off + want - 1) / ps

	// One descriptor per warp: its bookkeeping is paid once here, and the
	// span's later pages ride one vectored relaxed RPC (budget permitting)
	// so the daemon pipelines the file reads while the warp copies the
	// first page.
	b.Busy(fs.opt.APICostPerPage)
	if lastPage > firstPage && !f.writeOnce {
		n := lastPage - firstPage
		if budget := int64(fs.fetchBudget()); n > budget {
			n = budget
		}
		if n > 0 {
			fs.spanFetch(b, f, firstPage+1, n, pcache.SpecNone, fs.lane(b).Gran(gsys.GranWarp))
		}
	}

	var done int64
	ri, rOff := 0, 0 // scatter cursor: position within warp[ri].Dst
	for done < want {
		cur := off + done
		pageIdx := cur / ps
		inPage := cur - pageIdx*ps
		n := ps - inPage
		if n > want-done {
			n = want - done
		}
		ref, err := fs.getPage(b, f, pageIdx)
		if err != nil {
			return done, err
		}
		ref.fr.Lock()
		for copied := int64(0); copied < n; {
			for rOff >= len(warp[ri].Dst) {
				ri++
				rOff = 0
			}
			c := int64(len(warp[ri].Dst) - rOff)
			if c > n-copied {
				c = n - copied
			}
			if fs.opt.ZeroCopyRead {
				// Zero-copy hit: warp lanes read the pinned frame in
				// place (one device-memory pass); see readImpl.
				copy(warp[ri].Dst[rOff:rOff+int(c)],
					ref.fr.Data[inPage+copied:inPage+copied+c])
				b.TouchBytes(c)
			} else {
				b.CopyBytes(warp[ri].Dst[rOff:rOff+int(c)],
					ref.fr.Data[inPage+copied:inPage+copied+c])
			}
			rOff += int(c)
			copied += c
		}
		if fs.opt.ZeroCopyRead {
			fs.zeroCopyReads.Add(1)
		}
		ref.fr.Unlock()
		ref.release()
		done += n
	}
	return done, nil
}

// WarpStats reports gpread_warp activity: calls, warps coalesced into one
// descriptor, and total descriptors issued (coalesced warps count one;
// divergent warps one per thread).
func (fs *FS) WarpStats() (calls, coalesced, descriptors int64) {
	return fs.warpReadCalls.Load(), fs.warpCoalesced.Load(), fs.warpDescriptors.Load()
}

// --- gpipe ------------------------------------------------------------

// Pipe ends, re-exported from the syscall layer.
const (
	PipeReader = gsys.PipeReader
	PipeWriter = gsys.PipeWriter
)

// PipeMode selects the end of a pipe.
type PipeMode = gsys.PipeMode

// pipeName resolves a pipe handle's name for tracing, best-effort.
func (fs *FS) pipeName(pd int64) string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.pipeNames[pd]
}

func (fs *FS) pipeOpenImpl(b *gpu.Block, name string, mode PipeMode, capBytes, writers int) (int64, error) {
	b.Busy(fs.opt.APICostPerPage)
	pd, err := fs.lane(b).PipeOpen(b.Clock, name, mode, capBytes, writers)
	if err != nil {
		return -1, err
	}
	fs.mu.Lock()
	if fs.pipeNames == nil {
		fs.pipeNames = make(map[int64]string)
	}
	fs.pipeNames[pd] = name
	fs.mu.Unlock()
	return pd, nil
}

func (fs *FS) pipeWriteImpl(b *gpu.Block, pd int64, data []byte) (int, error) {
	b.Busy(fs.opt.APICostPerPage)
	return fs.lane(b).PipeWrite(b.Clock, pd, data)
}

func (fs *FS) pipeReadImpl(b *gpu.Block, pd int64, dst []byte) (int, error) {
	b.Busy(fs.opt.APICostPerPage)
	return fs.lane(b).PipeRead(b.Clock, pd, dst)
}

func (fs *FS) pipeCloseImpl(b *gpu.Block, pd int64, mode PipeMode) error {
	b.Busy(fs.opt.APICostPerPage)
	return fs.lane(b).PipeClose(b.Clock, pd, mode)
}

// --- The public tracing wrappers --------------------------------------

// Readdir implements greaddir: one page of directory entries of path
// starting at cookie (0 first), at most max entries, with the next cookie
// (-1 once the enumeration is complete).
func (fs *FS) Readdir(b *gpu.Block, path string, cookie int64, max int) ([]Dirent, int64, error) {
	start := b.Clock.Now()
	ents, next, err := fs.readdirImpl(b, path, cookie, max)
	fs.record(b, trace.OpReaddir, path, cookie, int64(len(ents)), start, err)
	return ents, next, err
}

// ReadWarp implements gpread_warp; see readWarpImpl for semantics.
func (fs *FS) ReadWarp(b *gpu.Block, fd int, reqs []WarpReq) (int64, error) {
	start := b.Clock.Now()
	n, err := fs.readWarpImpl(b, fd, reqs)
	var off int64
	if len(reqs) > 0 {
		off = reqs[0].Off
	}
	fs.record(b, trace.OpReadWarp, fs.pathOf(fd), off, n, start, err)
	return n, err
}

// PipeOpen implements gpipe_open; every opener of a named pipe declares
// the same capacity and writer count.
func (fs *FS) PipeOpen(b *gpu.Block, name string, mode PipeMode, capBytes, writers int) (int64, error) {
	start := b.Clock.Now()
	pd, err := fs.pipeOpenImpl(b, name, mode, capBytes, writers)
	fs.record(b, trace.OpPipeOpen, name, 0, 0, start, err)
	return pd, err
}

// PipeWrite implements gpipe_write: data is one atomic record, and the
// call blocks on virtual time while the pipe lacks room for all of it.
func (fs *FS) PipeWrite(b *gpu.Block, pd int64, data []byte) (int, error) {
	start := b.Clock.Now()
	n, err := fs.pipeWriteImpl(b, pd, data)
	fs.record(b, trace.OpPipeWrite, fs.pipeName(pd), 0, int64(n), start, err)
	return n, err
}

// PipeRead implements gpipe_read: up to len(dst) buffered bytes, blocking
// on virtual time while the pipe is empty with live writers; io.EOF once
// the declared writers have closed and the buffer drained.
func (fs *FS) PipeRead(b *gpu.Block, pd int64, dst []byte) (int, error) {
	start := b.Clock.Now()
	n, err := fs.pipeReadImpl(b, pd, dst)
	terr := err
	if terr == io.EOF {
		terr = nil // end of stream is an outcome, not a trace-worthy error
	}
	fs.record(b, trace.OpPipeRead, fs.pipeName(pd), 0, int64(n), start, terr)
	return n, err
}

// PipeClose implements gpipe_close for one end of the pipe.
func (fs *FS) PipeClose(b *gpu.Block, pd int64, mode PipeMode) error {
	start := b.Clock.Now()
	err := fs.pipeCloseImpl(b, pd, mode)
	fs.record(b, trace.OpPipeClose, fs.pipeName(pd), 0, 0, start, err)
	return err
}
