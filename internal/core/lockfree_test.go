package core

import (
	"bytes"
	"fmt"
	"testing"

	"gpufs/internal/gpu"
)

// Tests for the ISSUE 8 lock-free hot path: the sharded frame allocator
// must never re-introduce spurious ErrCacheFull, the zero-copy read path
// must be metamorphically invisible (same bytes, same CacheStats), and the
// epoch domains must not leak retired leaves.

// TestShardedEvictionNoSpuriousCacheFull pins frames with long-lived
// mappings so reclamation has to dig past whole leaves of referenced pages,
// then keeps reading under a sharded allocator. With the pre-ISSUE-8
// advisory leaf bound (+8 leaves, sized for a single free list) a sharded
// pool could exhaust a lane's home shard and the steal ring while the
// evictable pages sat beyond the bound; the shard-aware bound plus
// steal-on-empty must make every read succeed.
func TestShardedEvictionNoSpuriousCacheFull(t *testing.T) {
	opt := defaultOpt()
	opt.CacheBytes = 16 * opt.PageSize // 16 frames
	opt.FrameShards = 4
	h := newHarness(t, 1, opt)
	fs := h.fss[0]

	ps := int(opt.PageSize)
	// File A: pages at leaf stride (one leaf per page), pinned by mappings.
	h.write(t, "/pinned", pattern(12*64*ps, 1))
	// File B: the working set that must keep cycling through what's left.
	wantB := pattern(20*ps, 2)
	h.write(t, "/work", wantB)

	h.run(t, 0, func(b *gpu.Block) error {
		fdA, err := fs.Open(b, "/pinned", O_RDONLY)
		if err != nil {
			return err
		}
		defer fs.Close(b, fdA)
		// Pin 12 of the 16 frames, each on its own radix leaf, so the
		// eviction scan sees 12 fully referenced leaves before any victim.
		var maps []*Mapping
		for i := 0; i < 12; i++ {
			m, err := fs.Mmap(b, fdA, int64(i*64*ps), int64(ps))
			if err != nil {
				return fmt.Errorf("pin %d: %w", i, err)
			}
			maps = append(maps, m)
		}

		fdB, err := fs.Open(b, "/work", O_RDONLY)
		if err != nil {
			return err
		}
		defer fs.Close(b, fdB)
		got := make([]byte, ps)
		// 3 passes over 20 pages through the 4 unpinned frames: every read
		// past the first few forces eviction, and every allocation runs
		// against a mostly-pinned sharded pool.
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < 20; i++ {
				n, err := fs.Read(b, fdB, got, int64(i*ps))
				if err != nil {
					return fmt.Errorf("pass %d page %d: %w", pass, i, err)
				}
				if n != ps || !bytes.Equal(got, wantB[i*ps:(i+1)*ps]) {
					return fmt.Errorf("pass %d page %d: bad bytes (n=%d)", pass, i, n)
				}
			}
		}
		for _, m := range maps {
			if err := m.Munmap(b); err != nil {
				return err
			}
		}
		return nil
	})
}

// runShapeZC is runShape for the zero-copy metamorphic check: one run of a
// read shape with the ZeroCopyRead / FrameShards knobs set as given.
func runShapeZC(t *testing.T, pol readPolicy, shape readShape, want []byte, zc bool, shards int) ([]byte, CacheStats) {
	t.Helper()
	opt := defaultOpt()
	pol.apply(&opt)
	opt.ZeroCopyRead = zc
	opt.FrameShards = shards
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	h.write(t, "/meta", want)

	got := make([]byte, len(want))
	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/meta", O_RDONLY)
		if err != nil {
			return err
		}
		if err := shape.read(fs, b, fd, got); err != nil {
			return fmt.Errorf("shape %s: %w", shape.name, err)
		}
		return fs.Close(b, fd)
	})
	if zc && fs.ZeroCopyReads() == 0 {
		t.Errorf("shape %s: zero-copy enabled but no reads took the aliasing path", shape.name)
	}
	return got, fs.CacheStats()
}

// TestMetamorphicZeroCopy runs the PR-5 read-shape suite with the zero-copy
// read path and the sharded allocator toggled: the knobs change only how
// bytes are served (aliasing vs copying) and which free list a frame comes
// from — never WHICH pages are fetched, prefetched, or cleaned. Bytes and
// CacheStats must be identical across all knob settings.
func TestMetamorphicZeroCopy(t *testing.T) {
	opt := defaultOpt()
	want := pattern(10*int(opt.PageSize)+777, 5)
	shapes := readShapes(int(opt.PageSize))

	type knobs struct {
		name   string
		zc     bool
		shards int
	}
	variants := []knobs{
		{"baseline", false, 1},
		{"zerocopy", true, 1},
		{"sharded", false, 4},
		{"zerocopy-sharded", true, 4},
	}

	for _, pol := range readPolicies {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			for _, shape := range shapes {
				baseGot, baseCS := runShapeZC(t, pol, shape, want, variants[0].zc, variants[0].shards)
				if !bytes.Equal(baseGot, want) {
					t.Errorf("shape %s: baseline bytes diverge from source", shape.name)
				}
				for _, v := range variants[1:] {
					got, cs := runShapeZC(t, pol, shape, want, v.zc, v.shards)
					if !bytes.Equal(got, baseGot) {
						t.Errorf("shape %s: %s bytes diverge from baseline", shape.name, v.name)
					}
					if cs != baseCS {
						t.Errorf("shape %s: %s CacheStats %+v diverge from baseline %+v",
							shape.name, v.name, cs, baseCS)
					}
				}
			}
		})
	}
}

// TestEpochLeafLeakFree drives enough eviction churn to detach and recycle
// leaves, then checks every retired leaf was (or can be) reclaimed: after
// quiescence each tree's epoch domain must have freed exactly what it
// retired.
func TestEpochLeafLeakFree(t *testing.T) {
	opt := defaultOpt()
	opt.CacheBytes = 8 * opt.PageSize // tiny: constant eviction
	opt.FrameShards = 2
	opt.ZeroCopyRead = true
	h := newHarness(t, 1, opt)
	fs := h.fss[0]

	ps := int(opt.PageSize)
	// Leaf-stride pages: each page lives on its own leaf, so eviction
	// empties and detaches leaves continuously.
	data := pattern(ps, 7)
	for i := 0; i < 96; i++ {
		h.write(t, fmt.Sprintf("/leak%d", i%4), pattern((i%4+1)*64*ps, byte(i%4)))
	}

	h.runBlocks(t, 0, 8, func(b *gpu.Block) error {
		got := make([]byte, len(data))
		for round := 0; round < 6; round++ {
			path := fmt.Sprintf("/leak%d", (b.Idx+round)%4)
			fd, err := fs.Open(b, path, O_RDONLY)
			if err != nil {
				return err
			}
			for i := 0; i < (b.Idx+round)%4+1; i++ {
				if _, err := fs.Read(b, fd, got, int64(i*64*ps)); err != nil {
					fs.Close(b, fd)
					return err
				}
			}
			if err := fs.Close(b, fd); err != nil {
				return err
			}
		}
		return nil
	})

	fs.mu.Lock()
	var trees []*fileCache
	for _, f := range fs.fds {
		if f != nil && f.fc != nil {
			trees = append(trees, f.fc)
		}
	}
	for _, fc := range fs.closed {
		trees = append(trees, fc)
	}
	fs.mu.Unlock()
	for _, fc := range trees {
		dom := fc.tree.EpochDomain()
		if !dom.Quiesce() {
			t.Errorf("tree %s: epoch domain did not quiesce (retired=%d freed=%d)",
				fc.path, dom.Retired(), dom.Freed())
		}
	}
}
