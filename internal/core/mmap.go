package core

import (
	"fmt"

	"gpufs/internal/gpu"
)

// Mapping is a gmmap'd file region: a window directly into a buffer-cache
// page, residing in the same address space and protection domain as the
// application's GPU code (§3.2). The mapping holds a reference on its page,
// pinning it against reclamation until gmunmap.
type Mapping struct {
	// Data is the mapped bytes — an alias of the page frame, so reads
	// and writes go straight to the buffer cache with no copy.
	Data []byte
	// FileOffset is the file offset of Data[0].
	FileOffset int64

	fs    *FS
	f     *file
	ref   pageRef
	valid bool
}

// Mmap implements gmmap, the relaxed mmap of §3.2. Its loosened contract is
// what makes it implementable without per-thread translation updates:
//
//   - It may map less than requested: the mapping never crosses a buffer
//     cache page boundary, so the caller gets the prefix of [off,
//     off+length) that fits in one page and must loop for more (the
//     paper's microbenchmarks map page-at-a-time for exactly this reason).
//   - There is no address-targeted mapping (no MAP_FIXED).
//   - Permissions are advisory: mapping a read-only file may return
//     writable memory. GPUfs trusts the application not to modify it, and
//     never propagates "improper" updates to such quasi-read-only pages
//     back to the host, preserving host file integrity.
//
// For readable files the mapping is also clamped to the file size captured
// at open (extended by local writes). For write-only opens it is clamped
// only by the page boundary, and the mapped region becomes part of the
// file when written and synced.
func (fs *FS) mmapImpl(b *gpu.Block, fd int, off, length int64) (*Mapping, error) {
	if off < 0 || length <= 0 {
		return nil, fmt.Errorf("%w: mmap off=%d len=%d", ErrInvalid, off, length)
	}
	f, err := fs.lookupFd(fd)
	if err != nil {
		return nil, err
	}

	ps := fs.opt.PageSize
	pageIdx := off / ps
	inPage := off - pageIdx*ps

	// Prefix semantics: clamp to the page boundary…
	n := ps - inPage
	if n > length {
		n = length
	}
	// …and, for readable files, to end of file.
	if f.readable {
		size := f.fc.size.Load()
		if off >= size {
			return nil, fmt.Errorf("%w: mmap at %d beyond EOF %d", ErrInvalid, off, size)
		}
		if off+n > size {
			n = size - off
		}
	}

	ref, err := fs.getPage(b, f, pageIdx)
	if err != nil {
		return nil, err
	}
	// Mark the page mapped (beyond the plain reference): gfsync must leave
	// it to the application's gmsync while this window is live (Table 1).
	ref.fp.MapRef()
	b.Busy(fs.opt.APICostPerPage)
	// gmmap is page-at-a-time by design (prefix semantics), so it is the
	// adaptive engine's most important hook: sequential mappers touch one
	// page per call and would otherwise never amortize the RPC latency.
	if fs.opt.ReadAheadAdaptive {
		fs.adaptiveReadAhead(b, f, pageIdx, pageIdx)
	}
	return &Mapping{
		Data:       ref.fr.Data[inPage : inPage+n],
		FileOffset: off,
		fs:         fs,
		f:          f,
		ref:        ref,
		valid:      true,
	}, nil
}

// FrameIndex reports the pframe backing the mapping (the raw-data-array
// slot gmunmap/gmsync recover by index arithmetic, §4.2).
func (m *Mapping) FrameIndex() int32 { return m.ref.fr.Index }

// Munmap implements gmunmap: it drops the mapping's page reference, making
// the page reclaimable again. Dirty state set via MarkDirty (or by gwrite
// to the same page) survives and is propagated by gfsync/gmsync/eviction.
func (m *Mapping) munmapImpl(b *gpu.Block) error {
	if !m.valid {
		return ErrBadMapping
	}
	m.valid = false
	b.Busy(m.fs.opt.APICostPerPage)
	m.ref.fp.MapUnref()
	m.ref.release()
	m.Data = nil
	return nil
}

// MarkDirty records that the application wrote through the mapping, so the
// page participates in write-back. Writes through mappings of read-only
// opens are deliberately NOT propagated (quasi-read-only semantics, §3.2):
// MarkDirty on such a mapping is a no-op.
func (m *Mapping) MarkDirty() {
	if m.valid && m.f.writable {
		m.ref.fr.Dirty.Store(true)
		extendValid(m.ref.fr, m.FileOffset-m.ref.fr.Offset.Load()+int64(len(m.Data)))
		extendSize(m.f.fc, m.FileOffset+int64(len(m.Data)))
	}
}

// Msync implements gmsync: it synchronously writes this specific page back
// to the host. The application must coordinate gmsync calls with updates by
// other threadblocks (Table 1) — GPUfs does not lock out concurrent writers
// of the same page here.
func (m *Mapping) msyncImpl(b *gpu.Block) error {
	if !m.valid {
		return ErrBadMapping
	}
	if !m.f.writable {
		return nil // quasi-read-only: never propagated
	}
	if !m.ref.fr.Dirty.Load() {
		return nil
	}
	if err := m.fs.writeBackFrame(b, m.f.hostFd, m.ref.fr); err != nil {
		return err
	}
	m.fs.refreshGeneration(b, m.f.fc, m.f.hostFd)
	return nil
}

// Write copies data into the mapping at the given offset relative to the
// mapping start, marks the page dirty, and issues the gwrite memory fence.
// It is a convenience wrapper equivalent to writing m.Data directly and
// calling MarkDirty, but with the device-memory cost accounted.
func (m *Mapping) Write(b *gpu.Block, at int64, data []byte) (int, error) {
	if !m.valid {
		return 0, ErrBadMapping
	}
	if at < 0 || at >= int64(len(m.Data)) {
		return 0, fmt.Errorf("%w: mapping write at %d of %d", ErrInvalid, at, len(m.Data))
	}
	m.ref.fr.Lock()
	n := b.CopyBytes(m.Data[at:], data)
	m.ref.fr.Unlock()
	m.MarkDirty()
	b.MemFence()
	return n, nil
}

// Read copies from the mapping into dst, accounting device-memory cost.
// Under the ZeroCopyRead knob the mapping is read in place (the mapping IS
// an alias of the pinned frame), charging one device-memory pass.
func (m *Mapping) Read(b *gpu.Block, at int64, dst []byte) (int, error) {
	if !m.valid {
		return 0, ErrBadMapping
	}
	if at < 0 || at >= int64(len(m.Data)) {
		return 0, fmt.Errorf("%w: mapping read at %d of %d", ErrInvalid, at, len(m.Data))
	}
	m.ref.fr.Lock()
	var n int
	if m.fs.opt.ZeroCopyRead {
		n = copy(dst, m.Data[at:])
		b.TouchBytes(int64(n))
		m.fs.zeroCopyReads.Add(1)
	} else {
		n = b.CopyBytes(dst, m.Data[at:])
	}
	m.ref.fr.Unlock()
	return n, nil
}
