package core

import (
	"testing"

	"gpufs/internal/gpu"
)

// TestRestartReclaimsPrefetchedFrames is the regression test for the
// prefetch frame leak: read-ahead initializes page slots asynchronously,
// and a slot claimed on a leaf that FIFO reclamation detaches concurrently
// would strand its frame on an unreachable node — Restart's cache sweep
// (like eviction's) walks only attached leaves, so the frame would never
// return to the free list. After a restart, every frame must be free.
func TestRestartReclaimsPrefetchedFrames(t *testing.T) {
	opt := defaultOpt()
	opt.CacheBytes = 8 * opt.PageSize
	opt.ReadAheadPages = 4
	opt.EvictBatch = 64 // drain whole leaves so RemoveLeaf fires
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	total := 32 * opt.PageSize
	h.write(t, "/big", pattern(int(total), 11))

	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/big", O_RDWR)
		if err != nil {
			return err
		}
		// Stream with read-ahead under eviction pressure: prefetch claims
		// race leaf reclamation. Dirty a few pages too, so restart also
		// covers discarding unsynced data.
		buf := make([]byte, opt.PageSize)
		for off := int64(0); off < total; off += opt.PageSize {
			if _, err := fs.Read(b, fd, buf, off); err != nil {
				return err
			}
		}
		if _, err := fs.Write(b, fd, []byte("doomed"), 0); err != nil {
			return err
		}
		fs.Restart(b)
		return nil
	})

	if free, num := fs.Cache().FreeFrames(), fs.Cache().NumFrames(); free != num {
		t.Fatalf("restart leaked %d frames (%d/%d free)", num-free, free, num)
	}
	// The card's memory is gone; the host keeps only what was synced.
	if got := h.read(t, "/big"); string(got[:6]) == "doomed" {
		t.Fatalf("unsynced dirty data survived a restart")
	}

	// The instance stays usable: a fresh open re-faults from the host.
	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/big", O_RDONLY)
		if err != nil {
			return err
		}
		buf := make([]byte, 64)
		if _, err := fs.Read(b, fd, buf, 0); err != nil {
			return err
		}
		return fs.Close(b, fd)
	})
}
