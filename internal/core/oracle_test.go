package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"gpufs/internal/gpu"
)

// TestOracleRandomOps drives one GPU through long random sequences of
// GPUfs operations on a single file and checks every observation against a
// plain in-memory model of the consistency contract:
//
//   - gread sees the GPU's local view: host content as of the last
//     (in)validation, overlaid with every local gwrite since;
//   - gfsync makes the host equal to the local view;
//   - gclose/gopen round trips preserve the local view (closed file
//     table), even across eviction pressure (the cache is kept tiny);
//   - an external host write invalidates the cache at the next gopen,
//     resetting the local view to the host's content;
//   - gftruncate cuts both views.
func TestOracleRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runOracle(t, seed)
		})
	}
}

func runOracle(t *testing.T, seed int64) {
	opt := defaultOpt()
	opt.CacheBytes = 6 * opt.PageSize // constant eviction pressure
	h := newHarness(t, 1, opt)
	fs := h.fss[0]
	rng := rand.New(rand.NewSource(seed))

	const maxFile = 200 << 10 // ~12 pages, double the cache
	h.write(t, "/oracle", nil)

	model := []byte{} // the GPU's expected local view
	open := false
	var fd int

	ensureOpen := func(b *gpu.Block) error {
		if open {
			return nil
		}
		var err error
		fd, err = fs.Open(b, "/oracle", O_RDWR)
		if err != nil {
			return err
		}
		open = true
		return nil
	}

	var trace []string
	logf := func(format string, args ...any) {
		trace = append(trace, fmt.Sprintf(format, args...))
	}
	defer func() {
		if t.Failed() {
			start := len(trace) - 60
			if start < 0 {
				start = 0
			}
			for _, l := range trace[start:] {
				t.Log(l)
			}
		}
	}()

	h.run(t, 0, func(b *gpu.Block) error {
		for step := 0; step < 300; step++ {
			switch op := rng.Intn(100); {
			case op < 35: // gwrite
				if err := ensureOpen(b); err != nil {
					return err
				}
				off := rng.Intn(maxFile - 1)
				n := rng.Intn(min(8<<10, maxFile-off)) + 1
				data := make([]byte, n)
				rng.Read(data)
				logf("%d: write off=%d n=%d", step, off, n)
				if _, err := fs.Write(b, fd, data, int64(off)); err != nil {
					return fmt.Errorf("step %d write: %w", step, err)
				}
				if off+n > len(model) {
					grown := make([]byte, off+n)
					copy(grown, model)
					model = grown
				}
				copy(model[off:], data)

			case op < 70: // gread
				if err := ensureOpen(b); err != nil {
					return err
				}
				if len(model) == 0 {
					continue
				}
				off := rng.Intn(len(model))
				n := rng.Intn(16<<10) + 1
				buf := make([]byte, n)
				logf("%d: read off=%d n=%d", step, off, n)
				got, err := fs.Read(b, fd, buf, int64(off))
				if err != nil {
					return fmt.Errorf("step %d read: %w", step, err)
				}
				want := len(model) - off
				if want > n {
					want = n
				}
				if got != want {
					return fmt.Errorf("step %d read length %d, want %d (off %d, size %d)",
						step, got, want, off, len(model))
				}
				if !bytes.Equal(buf[:got], model[off:off+got]) {
					return fmt.Errorf("step %d read content mismatch at %d+%d", step, off, got)
				}

			case op < 80: // gfsync: host catches up to the local view
				if err := ensureOpen(b); err != nil {
					return err
				}
				logf("%d: fsync", step)
				if err := fs.Fsync(b, fd); err != nil {
					return fmt.Errorf("step %d fsync: %w", step, err)
				}
				host := h.read(t, "/oracle")
				if !bytes.Equal(host, model) {
					i := 0
					for i < len(host) && i < len(model) && host[i] == model[i] {
						i++
					}
					return fmt.Errorf("step %d: host diverges after gfsync at byte %d (host=%x model=%x; page %d, inPage %d; sizes %d/%d)",
						step, i, host[i], model[i], i/(16<<10), i%(16<<10), len(host), len(model))
				}

			case op < 88: // gclose / later reopen (closed-table round trip)
				if open {
					logf("%d: close", step)
					if err := fs.Close(b, fd); err != nil {
						return fmt.Errorf("step %d close: %w", step, err)
					}
					open = false
				}

			case op < 94: // gftruncate
				if err := ensureOpen(b); err != nil {
					return err
				}
				size := rng.Intn(maxFile)
				logf("%d: truncate size=%d", step, size)
				if err := fs.Ftruncate(b, fd, int64(size)); err != nil {
					return fmt.Errorf("step %d truncate: %w", step, err)
				}
				if size < len(model) {
					model = model[:size]
				} else {
					grown := make([]byte, size)
					copy(grown, model)
					model = grown
				}

			default: // external host write while the file is closed on the GPU
				if open {
					continue // host writers are locked out while the GPU writes
				}
				n := rng.Intn(maxFile/2) + 1
				data := make([]byte, n)
				rng.Read(data)
				logf("%d: external write n=%d", step, n)
				h.write(t, "/oracle", data)
				// The next gopen invalidates: local view = host content.
				model = append([]byte(nil), data...)
			}
		}
		if !open {
			if err := ensureOpen(b); err != nil {
				return err
			}
		}
		// Final sync: host and model must agree.
		if err := fs.Fsync(b, fd); err != nil {
			return err
		}
		return fs.Close(b, fd)
	})

	host := h.read(t, "/oracle")
	if !bytes.Equal(host, model) {
		t.Fatalf("final host content diverges from model: %d vs %d bytes", len(host), len(model))
	}
	if fs.Cache().Reclaimed() == 0 {
		t.Fatalf("oracle run exerted no eviction pressure; shrink the cache")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
