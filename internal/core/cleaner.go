package core

import (
	"sync/atomic"

	"gpufs/internal/core/radix"
	"gpufs/internal/gsys"
	"gpufs/internal/simtime"
	"gpufs/internal/trace"
)

// The background writeback cleaner (ISSUE 4). The original design has no
// daemon threads on the GPU side: paging hijacks the faulting threadblock
// (§4.2), so every dirty victim costs that block a synchronous RPC write.
// The cleaner takes that work off the fault critical path: when a demand
// fault finds the free pool below a low watermark, it kicks an idle
// cleaner lane, which runs on its OWN virtual clock and RPC lane — the
// GPU System Calls paper's non-blocking issue discipline — writing back
// cold dirty pages of open files (clean in place, stay resident) and
// pre-evicting closed-file frames (the §4.2 policy's cheapest victims)
// until the pool recovers to a high watermark. Eviction by the faulting
// block then mostly finds clean frames and never blocks on RPC writes.
//
// Failure semantics are unchanged from eviction-driven write-back: a
// failed write records the file's sticky deferred error
// (fileCache.recordWriteErr), surfaced at the next gfsync or final gclose,
// and the page stays resident and dirty so no data is lost. The
// claim/detach protocol is reused verbatim through evictFromFileOn and the
// FPage TryRef/TryEvict state machine.

// cleanerLaneBase offsets cleaner lane ids past any plausible threadblock
// index, so cleaner RPC traffic hashes onto ring shards independently of
// the blocks it is cleaning for.
const cleanerLaneBase = 1 << 20

// maxCleanPerPass bounds how many open-file dirty pages one cleaner
// wake-up writes back, so a kick under heavy write load cannot monopolize
// the daemon workers for unbounded (virtual) time.
const maxCleanPerPass = 64

type cleaner struct {
	lanes []*cleanLane
	// low and high are the free-frame watermarks: a demand fault below
	// low kicks a lane; a pass stops pre-evicting at high.
	low  int
	high int
}

type cleanLane struct {
	id   int
	busy atomic.Bool
	clk  *simtime.Clock
	lane *gsys.Client
}

func newCleaner(fs *FS, workers int) *cleaner {
	n := fs.cache.NumFrames()
	low := n / 4
	if low < 2 {
		low = 2
	}
	high := n / 2
	if high <= low {
		high = low + 1
	}
	c := &cleaner{low: low, high: high}
	for i := 0; i < workers; i++ {
		c.lanes = append(c.lanes, &cleanLane{
			id:   i,
			clk:  simtime.NewClock(0),
			lane: fs.sys.Bind(cleanerLaneBase + i),
		})
	}
	return c
}

// maybeClean is the demand-fault hook: when the free pool is below the
// low watermark it runs a cleaning pass on an idle lane's clock. The
// faulting block pays nothing but this check — the pass advances the
// lane's timeline, not the block's, which is what makes the cleaning
// asynchronous in virtual time. With no cleaner configured this is a nil
// check.
func (fs *FS) maybeClean(now simtime.Time) {
	c := fs.cleaner
	if c == nil {
		return
	}
	if fs.cache.FreeFrames() >= c.low {
		return
	}
	for _, ln := range c.lanes {
		if ln.busy.CompareAndSwap(false, true) {
			fs.cleanerKicks.Add(1)
			// The lane cannot act before the kick that woke it.
			if ln.clk.Now() < now {
				ln.clk.AdvanceTo(now)
			}
			fs.runCleanerPass(ln)
			ln.busy.Store(false)
			return
		}
	}
	// Every lane busy: the pool is under pressure but cleaning is already
	// in progress; the fault falls through to the normal paging path.
}

// runCleanerPass walks the victim files in the same priority order as
// eviction: closed files are pre-evicted outright (dirty pages written
// back through the retained descriptor, frames freed), open files have
// their cold dirty pages cleaned in place so a later eviction finds them
// clean.
func (fs *FS) runCleanerPass(ln *cleanLane) {
	c := fs.cleaner
	start := ln.clk.Now()
	a := evictActor{
		lane:  ln.lane,
		clk:   ln.clk,
		busy:  func(d simtime.Duration) { ln.clk.Advance(d) },
		block: -1 - ln.id,
	}
	evicted := 0
	cleaned := 0

	for _, v := range fs.pickVictims() {
		free := fs.cache.FreeFrames()
		if free >= c.high && v.class == 0 {
			continue // pool recovered: no need to pre-evict more
		}
		if v.class == 0 {
			// Dirty-only: clean frames of a closed file are cheap for a
			// faulting block to reclaim and may yet be re-hit by a reopen.
			evicted += fs.evictFromFileOn(a, v, c.high-free, true)
			continue
		}
		if cleaned < maxCleanPerPass {
			cleaned += fs.cleanFileOn(a, v, maxCleanPerPass-cleaned)
		}
	}
	if evicted+cleaned > 0 {
		fs.cleanedPages.Add(int64(evicted + cleaned))
		fs.recordAt(a.block, trace.OpClean, "", 0,
			int64(evicted+cleaned)*fs.opt.PageSize, start, ln.clk.Now(), nil)
	}
}

// cleanFileOn writes back up to max dirty, unreferenced pages of v
// without evicting them. Failures record the file's deferred write error
// (POSIX errseq semantics — identical to eviction-driven write-back) and
// leave the page dirty and resident.
func (fs *FS) cleanFileOn(a evictActor, v victim, max int) int {
	if max <= 0 || v.hostFd == 0 {
		return 0
	}
	fc := v.fc
	cleaned := 0
	wrote := false
	fc.tree.ForEachReadyPage(func(_ uint64, p *radix.FPage) bool {
		if cleaned >= max {
			return false
		}
		if p.Refs() > 0 {
			return true // hot: mapped or mid-access
		}
		if !p.TryRef() {
			return true
		}
		fi := p.Frame()
		if fi < 0 {
			p.Unref()
			return true
		}
		fr := fs.cache.Frame(fi)
		if fr.FileID.Load() != fc.tree.ID() || !fr.Dirty.Load() {
			p.Unref()
			return true
		}
		if err := fs.writeBackFrameOn(a.lane, a.clk, v.hostFd, fr); err != nil {
			fc.recordWriteErr(err)
		} else {
			wrote = true
			cleaned++
			a.busy(fs.opt.APICostPerPage)
		}
		p.Unref()
		return true
	})
	if wrote {
		fs.refreshGenerationOn(a.lane, a.clk, fc, v.hostFd)
	}
	return cleaned
}
