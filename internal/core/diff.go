package core

// Range is a half-open byte range within a page.
type Range struct{ Start, End int64 }

// Len reports the range's length.
func (r Range) Len() int64 { return r.End - r.Start }

// diffRanges returns the byte ranges where cur differs from pristine — the
// "diff" step of the diff-and-merge write-sharing protocol (§3.1): when a
// buffer-cache page is falsely shared between GPUs, only the bytes a GPU
// actually modified may be propagated, or concurrent modifications by
// others would be reverted. Bytes beyond len(pristine) are treated as
// differing wherever non-zero padding rules don't apply — i.e. the whole
// extension is included, since it is new content.
//
// Adjacent ranges separated by fewer than coalesceGap identical bytes are
// merged, trading a little redundant transfer for fewer RPC write requests.
func diffRanges(cur, pristine []byte, coalesceGap int64) []Range {
	n := int64(len(cur))
	p := int64(len(pristine))
	var out []Range
	i := int64(0)
	for i < n {
		// Skip identical bytes.
		for i < n && i < p && cur[i] == pristine[i] {
			i++
		}
		if i >= n {
			break
		}
		start := i
		// Consume differing bytes, absorbing small identical gaps.
		for i < n {
			if i < p && cur[i] == pristine[i] {
				// Probe the gap.
				g := i
				for g < n && g < p && cur[g] == pristine[g] && g-i < coalesceGap {
					g++
				}
				if g < n && (g >= p || cur[g] != pristine[g]) && g-i < coalesceGap {
					i = g
					continue
				}
				break
			}
			i++
		}
		out = append(out, Range{start, i})
	}
	return coalesce(out, coalesceGap)
}

// nonZeroRanges returns the ranges of non-zero bytes in cur: the trivial
// "diff against zeros" of O_GWRONCE pages, whose pristine copy is
// implicitly all zeros and need never be stored (§3.1).
func nonZeroRanges(cur []byte, coalesceGap int64) []Range {
	n := int64(len(cur))
	var out []Range
	i := int64(0)
	for i < n {
		for i < n && cur[i] == 0 {
			i++
		}
		if i >= n {
			break
		}
		start := i
		for i < n && cur[i] != 0 {
			i++
		}
		out = append(out, Range{start, i})
	}
	return coalesce(out, coalesceGap)
}

// coalesce merges ranges whose gap is smaller than gap.
func coalesce(in []Range, gap int64) []Range {
	if len(in) < 2 {
		return in
	}
	out := in[:1]
	for _, r := range in[1:] {
		last := &out[len(out)-1]
		if r.Start-last.End < gap {
			last.End = r.End
		} else {
			out = append(out, r)
		}
	}
	return out
}

// mergeInto applies the diff ranges of src (relative to pristine) onto dst,
// byte-wise: the "merge" step used by tests to validate that concurrent
// disjoint writes from several GPUs reconcile. dst must be at least as long
// as src over the given ranges.
func mergeInto(dst, src []byte, ranges []Range) {
	for _, r := range ranges {
		copy(dst[r.Start:r.End], src[r.Start:r.End])
	}
}
