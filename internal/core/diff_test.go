package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNonZeroRangesBasic(t *testing.T) {
	cases := []struct {
		in   []byte
		gap  int64
		want []Range
	}{
		{nil, 1, nil},
		{[]byte{0, 0, 0}, 1, nil},
		{[]byte{1, 2, 3}, 1, []Range{{0, 3}}},
		{[]byte{0, 1, 0, 0, 0, 2}, 1, []Range{{1, 2}, {5, 6}}},
		{[]byte{0, 1, 0, 0, 0, 2}, 10, []Range{{1, 6}}}, // coalesced
		{[]byte{9}, 1, []Range{{0, 1}}},
	}
	for i, c := range cases {
		got := nonZeroRanges(c.in, c.gap)
		if !rangesEqual(got, c.want) {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestDiffRangesBasic(t *testing.T) {
	cur := []byte("heXlo worYd")
	pristine := []byte("hello world")
	got := diffRanges(cur, pristine, 1)
	if !rangesEqual(got, []Range{{2, 3}, {9, 10}}) {
		t.Fatalf("got %v", got)
	}
	// Extension beyond the pristine copy is all new content.
	cur2 := []byte("hello world plus more")
	got = diffRanges(cur2, pristine, 1)
	if !rangesEqual(got, []Range{{11, 21}}) {
		t.Fatalf("extension: got %v", got)
	}
	// Identical inputs: no ranges.
	if got := diffRanges(pristine, pristine, 4); got != nil {
		t.Fatalf("identical: got %v", got)
	}
}

func rangesEqual(a, b []Range) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDiffMergeRoundTrip is the diff-and-merge protocol's core property:
// applying the diff of (cur vs pristine) onto any base that agrees with
// pristine outside the diff ranges reconstructs cur exactly — this is what
// guarantees concurrent non-overlapping writes from several GPUs merge
// without reverting each other (§3.1).
func TestDiffMergeRoundTrip(t *testing.T) {
	f := func(seed int64, gapSmall uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(512) + 1
		pristine := make([]byte, n)
		rng.Read(pristine)
		cur := append([]byte(nil), pristine...)
		// Random sparse mutations.
		for i := 0; i < rng.Intn(20); i++ {
			cur[rng.Intn(n)] ^= byte(rng.Intn(255) + 1)
		}
		gap := int64(gapSmall%16) + 1

		ranges := diffRanges(cur, pristine, gap)
		merged := append([]byte(nil), pristine...)
		mergeInto(merged, cur, ranges)
		return bytes.Equal(merged, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDiffDisjointWritersMerge simulates two GPUs modifying disjoint halves
// of a falsely-shared page: applying both diffs onto the host copy must
// preserve both updates.
func TestDiffDisjointWritersMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(256)*2 + 2
		pristine := make([]byte, n)
		rng.Read(pristine)

		gpuA := append([]byte(nil), pristine...)
		gpuB := append([]byte(nil), pristine...)
		for i := 0; i < n/2; i++ {
			if rng.Intn(3) == 0 {
				gpuA[i] ^= 0xFF
			}
		}
		for i := n / 2; i < n; i++ {
			if rng.Intn(3) == 0 {
				gpuB[i] ^= 0xFF
			}
		}

		host := append([]byte(nil), pristine...)
		mergeInto(host, gpuA, diffRanges(gpuA, pristine, 1))
		mergeInto(host, gpuB, diffRanges(gpuB, pristine, 1))

		for i := 0; i < n/2; i++ {
			if host[i] != gpuA[i] {
				return false
			}
		}
		for i := n / 2; i < n; i++ {
			if host[i] != gpuB[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestNonZeroRangesCoverAllNonZeros: every non-zero byte falls inside some
// range, so diff-against-zeros never loses a written byte.
func TestNonZeroRangesCoverAllNonZeros(t *testing.T) {
	f := func(data []byte, gapSmall uint8) bool {
		gap := int64(gapSmall%32) + 1
		ranges := nonZeroRanges(data, gap)
		covered := func(i int64) bool {
			for _, r := range ranges {
				if i >= r.Start && i < r.End {
					return true
				}
			}
			return false
		}
		for i, b := range data {
			if b != 0 && !covered(int64(i)) {
				return false
			}
		}
		// Ranges are sorted, non-overlapping, in bounds.
		var prev int64 = -1
		for _, r := range ranges {
			if r.Start < 0 || r.End > int64(len(data)) || r.Start >= r.End || r.Start < prev {
				return false
			}
			prev = r.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeLen(t *testing.T) {
	if (Range{3, 10}).Len() != 7 {
		t.Fatalf("Len")
	}
}

func BenchmarkNonZeroRanges(b *testing.B) {
	data := make([]byte, 64<<10)
	for i := 0; i < len(data); i += 97 {
		data[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nonZeroRanges(data, writeBackGap)
	}
	b.SetBytes(int64(len(data)))
}

func BenchmarkDiffRanges(b *testing.B) {
	pristine := make([]byte, 64<<10)
	cur := make([]byte, 64<<10)
	copy(cur, pristine)
	for i := 0; i < len(cur); i += 211 {
		cur[i] = 7
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diffRanges(cur, pristine, writeBackGap)
	}
	b.SetBytes(int64(len(cur)))
}
