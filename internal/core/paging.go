package core

import (
	"fmt"
	"runtime"
	"strings"

	"gpufs/internal/core/pcache"
	"gpufs/internal/core/radix"
	"gpufs/internal/gpu"
	"gpufs/internal/gsys"
	"gpufs/internal/simtime"
	"gpufs/internal/trace"
)

// maxBatchFetch caps how many pages of one multi-page gread are issued as
// concurrent in-flight fetches ahead of the copy loop. The cap bounds
// speculative frame pressure: batched fetches use TryAlloc and never evict,
// so a burst cannot push resident data out of a tight cache.
const maxBatchFetch = 16

// fetchBudget reports how many concurrent speculative fetches a multi-page
// read may issue right now, scaled down when the frame pool is nearly
// drained so demand faults keep priority over pipelining.
func (fs *FS) fetchBudget() int {
	free := fs.cache.FreeFrames()
	budget := maxBatchFetch
	if free < budget*2 {
		budget = free / 2
	}
	return budget
}

// allocFrame obtains a free frame for (fc, offset), running the paging
// algorithm on the calling threadblock when the pool is empty. GPUfs has no
// daemon threads — paging "hijacks" the calling thread and must therefore
// be fast: the FIFO-like policy does a bounded amount of work per page
// (§4.2), unlike clock-style algorithms.
func (fs *FS) allocFrame(b *gpu.Block, fc *fileCache, offset int64) (*pcache.Frame, error) {
	const maxIdleRounds = 4096
	// With a background cleaner configured, a drained pool kicks it here
	// — off the block's clock — so by the time pressure forces eviction
	// below, the victims are usually already clean (or already free).
	fs.maybeClean(b.Clock.Now())
	lastAllocs := fs.cache.Allocs()
	for idle := 0; idle < maxIdleRounds; {
		if fr := fs.cache.TryAllocOn(b.Idx, fc.tree.ID(), offset); fr != nil {
			fc.frames.Add(1)
			return fr, nil
		}
		// Escalate the reclamation window as we starve, so heavy
		// thrash (28 blocks through a tiny cache) still converges.
		n := fs.evictPages(b, fs.opt.EvictBatch+idle/64)
		if n > 0 {
			idle = 0
			continue
		}
		// We reclaimed nothing — but exhaustion is only real if NOBODY
		// is making progress. Other blocks winning the freed frames is
		// contention, not deadlock.
		if a := fs.cache.Allocs(); a != lastAllocs {
			lastAllocs = a
			idle = 0
		} else {
			idle++
		}
		runtime.Gosched()
	}
	return nil, fmt.Errorf("%w: for %q offset %d (%s)", ErrCacheFull, fc.path, offset, fs.pagingSummary())
}

// pagingSummary renders the paging state for ErrCacheFull diagnostics.
func (fs *FS) pagingSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "free=%d/%d", fs.cache.FreeFrames(), fs.cache.NumFrames())
	for _, v := range fs.pickVictims() {
		refs := 0
		ready := 0
		// The guard keeps the snapshotted leaves from being recycled
		// while we read their slots (see radix.OldestLeaves).
		g := v.fc.tree.Pin()
		for _, leaf := range v.fc.tree.OldestLeaves(1 << 20) {
			for i := 0; i < 64; i++ {
				p := leaf.Page(i)
				if p.Ready() {
					ready++
				}
				refs += int(p.Refs())
			}
		}
		g.Exit()
		fmt.Fprintf(&b, " %s[class=%d frames=%d ready=%d refs=%d leaves=%d]",
			v.fc.path, v.class, v.fc.frames.Load(), ready, refs, v.fc.tree.Leaves())
	}
	return b.String()
}

// victim describes a reclamation candidate file.
type victim struct {
	fc     *fileCache
	hostFd int64
	class  int // 0 closed, 1 open read-only, 2 open writable
}

// pickVictims snapshots the file tables in reclamation-priority order:
// closed files first (not in use, usually clean, reclaimable without
// GPU–CPU communication), then read-only open files, and writable open
// files as a last resort — the policy of §4.2.
func (fs *FS) pickVictims() []victim {
	fs.mu.Lock()
	defer fs.mu.Unlock()

	var out []victim
	for _, fc := range fs.closed {
		if fc.frames.Load() > 0 {
			out = append(out, victim{fc: fc, hostFd: fc.keepFd.Load(), class: 0})
		}
	}
	var ro, rw []victim
	for _, f := range fs.fds {
		if f == nil || f.fc == nil || f.fc.frames.Load() == 0 {
			continue
		}
		if f.writable {
			rw = append(rw, victim{fc: f.fc, hostFd: f.hostFd, class: 2})
		} else {
			ro = append(ro, victim{fc: f.fc, hostFd: f.hostFd, class: 1})
		}
	}
	out = append(out, ro...)
	out = append(out, rw...)
	return out
}

// evictPages reclaims up to target pages, preferring the oldest last-level
// radix nodes of the highest-priority victim file (FIFO traversal of the
// per-file leaf list, lock-free, §4.2). Dirty pages are written back to the
// host before their frames are released. Returns the number reclaimed.
//
// A write-back failure never fails the (innocent) block that happened to
// trigger paging: the error is recorded on the owning file's cache and
// surfaced at that file's next gfsync or final gclose, and the dirty page
// stays resident so the data is not lost.
func (fs *FS) evictPages(b *gpu.Block, target int) int {
	reclaimed := 0
	for _, v := range fs.pickVictims() {
		if reclaimed >= target {
			break
		}
		reclaimed += fs.evictFromFile(b, v, target-reclaimed)
	}
	return reclaimed
}

// evictActor abstracts who runs reclamation: a faulting threadblock (its
// clock, MP, and home ring shard) or a background cleaner lane (its own
// clock; per-page bookkeeping advances it directly since no MP is
// occupied).
type evictActor struct {
	lane  *gsys.Client
	clk   *simtime.Clock
	busy  func(simtime.Duration)
	block int // trace attribution; negative for cleaner lanes
}

func (fs *FS) actorFor(b *gpu.Block) evictActor {
	return evictActor{lane: fs.lane(b), clk: b.Clock, busy: b.Busy, block: b.Idx}
}

func (fs *FS) evictFromFile(b *gpu.Block, v victim, target int) int {
	return fs.evictFromFileOn(fs.actorFor(b), v, target, false)
}

// evictFromFileOn reclaims up to target pages from v on behalf of actor a.
// With dirtyOnly set (the cleaner's pre-eviction mode) clean frames are
// left resident: evicting a clean frame costs a faulting block no RPC, so
// pre-evicting it early only destroys cache that a reopen would still hit —
// the cleaner's win is taking the write-back, not the release, off the
// critical path.
func (fs *FS) evictFromFileOn(a evictActor, v victim, target int, dirtyOnly bool) int {
	start := a.clk.Now()
	fc := v.fc
	reclaimed := 0
	wasted := 0
	wroteBack := false

	// Bound the traversal: we look at enough leaves to cover the target
	// plus slack for referenced pages. Leaves hold 64 slots each, so
	// target/64 rounded up covers the target even when every leaf is
	// full; the slack term is 8 leaves PER ALLOCATOR SHARD — with a
	// sharded frame pool a faulting lane may find its own shard (and the
	// steal ring) empty while the frames it must reclaim sit behind
	// referenced leaves, so the slack scales with the shard count to keep
	// the bound from re-introducing spurious ErrCacheFull. The bound is
	// advisory, not absolute: if the oldest leaves are entirely hot or
	// mid-claim (every slot referenced or initializing), a hard cutoff
	// would reclaim nothing forever while evictable pages sit in younger
	// leaves — the faulting block would spin to a spurious ErrCacheFull.
	// So the scan runs deeper until it frees at least one page. The
	// cleaner's dirty-only passes keep the hard bound instead: they may
	// legitimately find nothing to do, and demand eviction follows anyway.
	maxLeaves := target/64 + 8*fs.cache.Shards()
	scanned := 0
	// The epoch guard spans the FIFO snapshot AND its use: leaves this
	// very loop (or a concurrent pass) detaches must not be recycled
	// while we still read their slots. Retirement is merely deferred —
	// RemoveLeaf under our own guard just queues the leaf for the next
	// grace period.
	g := fc.tree.Pin()
	defer g.Exit()
	for _, leaf := range fc.tree.OldestLeaves(1 << 20) {
		if scanned >= maxLeaves && (reclaimed > 0 || dirtyOnly) {
			break
		}
		scanned++
		live := 0
		for i := 0; i < 64 && reclaimed < target; i++ {
			fp := leaf.Page(i)
			if !fp.Ready() {
				if !fp.Empty() {
					live++ // initializing or evicting: owns a frame
				}
				continue
			}
			if !fp.TryEvict() {
				live++
				continue
			}
			fi := fp.Frame()
			if fi < 0 {
				fp.FinishEvict()
				continue
			}
			fr := fs.cache.Frame(fi)
			if dirtyOnly && !fr.Dirty.Load() {
				fp.FinishInit(fi)
				fp.Unref()
				live++
				continue
			}
			if fr.Dirty.Load() {
				if v.hostFd == 0 {
					// No descriptor to write through — put the
					// page back rather than lose data.
					fp.FinishInit(fi)
					fp.Unref()
					live++
					continue
				}
				if err := fs.writeBackFrameOn(a.lane, a.clk, v.hostFd, fr); err != nil {
					// Keep the page (still dirty) and move on; the
					// owner learns of the failure at its next sync.
					fc.recordWriteErr(err)
					fp.FinishInit(fi)
					fp.Unref()
					live++
					continue
				}
				wroteBack = true
			}
			if fs.noteSpecDrop(fc, fr) {
				wasted++
			}
			fs.cache.Release(fr, true)
			fc.frames.Add(-1)
			fp.FinishEvict()
			a.busy(fs.opt.APICostPerPage)
			reclaimed++
		}
		if live == 0 && leafEmpty(leaf) {
			fc.tree.RemoveLeaf(leaf)
		}
		if reclaimed >= target {
			break
		}
	}

	if wroteBack {
		fs.refreshGenerationOn(a.lane, a.clk, fc, v.hostFd)
	}
	if reclaimed > 0 {
		fs.recordAt(a.block, trace.OpEvict, fc.path, 0, int64(reclaimed)*fs.opt.PageSize, start, a.clk.Now(), nil)
	}
	if wasted > 0 {
		fs.recordAt(a.block, trace.OpPrefetchWaste, fc.path, 0, int64(wasted)*fs.opt.PageSize, start, a.clk.Now(), nil)
	}
	return reclaimed
}

// leafEmpty reports whether no slot of the leaf holds — or is in the
// middle of acquiring — a frame. Detaching a leaf whose slot is mid-
// initialization would strand the initializer's frame on an unreachable
// node.
func leafEmpty(leaf *radix.Node) bool {
	for i := 0; i < 64; i++ {
		if !leaf.Page(i).Empty() {
			return false
		}
	}
	return true
}
