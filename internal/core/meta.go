package core

import (
	"fmt"

	"gpufs/internal/core/radix"
	"gpufs/internal/gpu"
)

// Info is the result of gfstat.
type Info struct {
	// Path the file was opened with.
	Path string
	// Ino is the host inode number.
	Ino int64
	// Size reflects the file size at the time of the first gopen that
	// opened this file on the host (Table 1), extended by writes issued
	// locally on this GPU.
	Size int64
}

// Fstat implements gfstat. It is served entirely from GPU-resident state —
// no CPU communication — because the open file table already captured the
// metadata at first open (Table 1).
func (fs *FS) fstatImpl(b *gpu.Block, fd int) (Info, error) {
	f, err := fs.lookupFd(fd)
	if err != nil {
		return Info{}, err
	}
	b.Busy(fs.opt.APICostPerPage)
	return Info{
		Path: f.path,
		Ino:  f.fc.ino,
		Size: f.fc.size.Load(),
	}, nil
}

// Ftruncate implements gftruncate: it truncates the host file to size via
// RPC and reclaims any buffer-cache pages wholly beyond the new end
// (Table 1). The page straddling the boundary has its valid extent clamped.
func (fs *FS) ftruncateImpl(b *gpu.Block, fd int, size int64) error {
	if size < 0 {
		return fmt.Errorf("%w: truncate to %d", ErrInvalid, size)
	}
	f, err := fs.lookupFd(fd)
	if err != nil {
		return err
	}
	if !f.writable {
		return fmt.Errorf("%w: %q", ErrReadOnly, f.path)
	}
	if err := fs.lane(b).Truncate(b.Clock, f.hostFd, size); err != nil {
		return err
	}

	fc := f.fc
	fc.size.Store(size)
	ps := fs.opt.PageSize
	fc.tree.ForEachReadyPage(func(idx uint64, p *radix.FPage) bool {
		pageOff := int64(idx) * ps
		if pageOff+ps <= size {
			return true
		}
		if !p.TryEvict() {
			return true // in use; its stale tail is masked by fc.size
		}
		if fi := p.Frame(); fi >= 0 {
			fr := fs.cache.Frame(fi)
			if pageOff >= size {
				// Wholly beyond the new end: reclaim.
				fs.noteSpecDrop(fc, fr)
				fs.cache.Release(fr, false)
				fc.frames.Add(-1)
				p.FinishEvict()
				b.Busy(fs.opt.APICostPerPage)
				return true
			}
			// Straddling page: clamp the valid extent and zero the
			// tail, so a later local write past the new end cannot
			// re-expose pre-truncation bytes.
			v := size - pageOff
			fr.Lock()
			if fr.ValidBytes.Load() > v {
				fr.ValidBytes.Store(v)
			}
			b.ZeroBytes(fr.Data[v:])
			fr.Unlock()
			p.FinishInit(fi)
			p.Unref()
			return true
		}
		p.FinishEvict()
		return true
	})
	fs.refreshGeneration(b, fc, f.hostFd)
	return nil
}

// Unlink implements gunlink: the file is removed on the host and any local
// buffer space is reclaimed immediately (Table 1). If the file is currently
// open on this GPU, the host unlink still happens; local pages are
// discarded when the last gclose retires the descriptor.
func (fs *FS) unlinkImpl(b *gpu.Block, path string) error {
	if err := fs.lane(b).Unlink(b.Clock, path); err != nil {
		return err
	}

	fs.mu.Lock()
	if fd, ok := fs.byPath[path]; ok {
		// Still open: mark for discard at final close.
		fs.fds[fd].unlinked = true
		fs.mu.Unlock()
		return nil
	}
	var victimIno int64 = -1
	for ino, fc := range fs.closed {
		if fc.path == path {
			victimIno = ino
			break
		}
	}
	var fc *fileCache
	if victimIno >= 0 {
		fc = fs.closed[victimIno]
		delete(fs.closed, victimIno)
		delete(fs.closedByPath, path)
	}
	fs.mu.Unlock()

	if fc != nil {
		fs.discardCache(b, fc)
	}
	return nil
}
