package core

import (
	"gpufs/internal/gpu"
	"gpufs/internal/simtime"
	"gpufs/internal/trace"
)

// SetTracer attaches an operation tracer (shared across GPUs is fine: the
// tracer is concurrency-safe and events carry the GPU id). A nil tracer —
// the default — records nothing and costs one nil check per call.
func (fs *FS) SetTracer(t *trace.Tracer) { fs.tracer = t }

// record emits one event if tracing is enabled.
func (fs *FS) record(b *gpu.Block, op trace.Op, path string, off, n int64, start simtime.Time, err error) {
	fs.recordAt(b.Idx, op, path, off, n, start, b.Clock.Now(), err)
}

// recordAt is record with an explicit actor and span, for paths that do
// not run on a threadblock's clock (the background cleaner reports a
// negative block index).
func (fs *FS) recordAt(block int, op trace.Op, path string, off, n int64, start, end simtime.Time, err error) {
	// The metrics hook shares the tracer's op names and spans, so a
	// histogram's op label selects the same population a trace filter on
	// that op would.
	fs.met.observeOp(op, start, end)
	if !fs.tracer.Enabled() {
		return
	}
	e := trace.Event{
		GPU:    fs.gpuID,
		Block:  block,
		Op:     op,
		Path:   path,
		Offset: off,
		Bytes:  n,
		Start:  start,
		End:    end,
	}
	if err != nil {
		e.Err = err.Error()
	}
	fs.tracer.Record(e)
}

// pathOf resolves a descriptor's path for tracing, best-effort.
func (fs *FS) pathOf(fd int) string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fd >= 0 && fd < len(fs.fds) && fs.fds[fd] != nil {
		return fs.fds[fd].path
	}
	return ""
}

// The public API: thin tracing wrappers over the implementations.

// Open implements gopen; see openImpl for semantics.
func (fs *FS) Open(b *gpu.Block, path string, flags int) (int, error) {
	start := b.Clock.Now()
	fd, err := fs.openImpl(b, path, flags)
	fs.record(b, trace.OpOpen, path, 0, 0, start, err)
	return fd, err
}

// Close implements gclose; see closeImpl for semantics.
func (fs *FS) Close(b *gpu.Block, fd int) error {
	start := b.Clock.Now()
	path := fs.pathOf(fd)
	err := fs.closeImpl(b, fd)
	fs.record(b, trace.OpClose, path, 0, 0, start, err)
	return err
}

// Read implements gread; see readImpl for semantics.
func (fs *FS) Read(b *gpu.Block, fd int, dst []byte, off int64) (int, error) {
	start := b.Clock.Now()
	n, err := fs.readImpl(b, fd, dst, off)
	fs.record(b, trace.OpRead, fs.pathOf(fd), off, int64(n), start, err)
	return n, err
}

// Write implements gwrite; see writeImpl for semantics.
func (fs *FS) Write(b *gpu.Block, fd int, src []byte, off int64) (int, error) {
	start := b.Clock.Now()
	n, err := fs.writeImpl(b, fd, src, off)
	fs.record(b, trace.OpWrite, fs.pathOf(fd), off, int64(n), start, err)
	return n, err
}

// Fsync implements gfsync; see fsyncImpl for semantics.
func (fs *FS) Fsync(b *gpu.Block, fd int) error {
	start := b.Clock.Now()
	err := fs.fsyncImpl(b, fd)
	fs.record(b, trace.OpFsync, fs.pathOf(fd), 0, 0, start, err)
	return err
}

// Fstat implements gfstat; see fstatImpl for semantics.
func (fs *FS) Fstat(b *gpu.Block, fd int) (Info, error) {
	start := b.Clock.Now()
	info, err := fs.fstatImpl(b, fd)
	fs.record(b, trace.OpFstat, fs.pathOf(fd), 0, 0, start, err)
	return info, err
}

// Ftruncate implements gftruncate; see ftruncateImpl for semantics.
func (fs *FS) Ftruncate(b *gpu.Block, fd int, size int64) error {
	start := b.Clock.Now()
	err := fs.ftruncateImpl(b, fd, size)
	fs.record(b, trace.OpFtruncate, fs.pathOf(fd), size, 0, start, err)
	return err
}

// Unlink implements gunlink; see unlinkImpl for semantics.
func (fs *FS) Unlink(b *gpu.Block, path string) error {
	start := b.Clock.Now()
	err := fs.unlinkImpl(b, path)
	fs.record(b, trace.OpUnlink, path, 0, 0, start, err)
	return err
}

// Mmap implements gmmap; see mmapImpl for semantics.
func (fs *FS) Mmap(b *gpu.Block, fd int, off, length int64) (*Mapping, error) {
	start := b.Clock.Now()
	m, err := fs.mmapImpl(b, fd, off, length)
	var n int64
	if m != nil {
		n = int64(len(m.Data))
	}
	fs.record(b, trace.OpMmap, fs.pathOf(fd), off, n, start, err)
	return m, err
}

// Munmap implements gmunmap; see munmapImpl for semantics.
func (m *Mapping) Munmap(b *gpu.Block) error {
	start := b.Clock.Now()
	path := ""
	if m.f != nil {
		path = m.f.path
	}
	err := m.munmapImpl(b)
	m.fs.record(b, trace.OpMunmap, path, m.FileOffset, 0, start, err)
	return err
}

// Msync implements gmsync; see msyncImpl for semantics.
func (m *Mapping) Msync(b *gpu.Block) error {
	start := b.Clock.Now()
	path := ""
	if m.f != nil {
		path = m.f.path
	}
	err := m.msyncImpl(b)
	m.fs.record(b, trace.OpMsync, path, m.FileOffset, int64(len(m.Data)), start, err)
	return err
}
