package core

import (
	"bytes"
	"math/rand"
	"testing"

	"gpufs/internal/gpu"
	"gpufs/internal/simtime"
)

// TestBatchedReadPipelinesFetches pins the multi-page gread fast path: a
// single read spanning N cold pages issues the trailing pages as
// speculative in-flight fetches, so it must return the same bytes as N
// sequential one-page greads but finish strictly earlier in virtual time
// (the page DMAs overlap instead of serializing on the ring round-trip).
func TestBatchedReadPipelinesFetches(t *testing.T) {
	opt := defaultOpt()
	pages := 8
	want := make([]byte, pages*int(opt.PageSize))
	rand.New(rand.NewSource(9)).Read(want)

	elapsed := func(batched bool) simtime.Duration {
		h := newHarness(t, 1, opt)
		h.write(t, "/big", want)
		fs := h.fss[0]
		var d simtime.Duration
		h.run(t, 0, func(b *gpu.Block) error {
			fd, err := fs.Open(b, "/big", O_RDONLY)
			if err != nil {
				return err
			}
			start := b.Clock.Now()
			got := make([]byte, len(want))
			if batched {
				if n, err := fs.Read(b, fd, got, 0); err != nil || n != len(want) {
					t.Errorf("batched read: n=%d err=%v", n, err)
				}
			} else {
				ps := int(opt.PageSize)
				for p := 0; p < pages; p++ {
					if n, err := fs.Read(b, fd, got[p*ps:(p+1)*ps], int64(p*ps)); err != nil || n != ps {
						t.Errorf("page %d read: n=%d err=%v", p, n, err)
					}
				}
			}
			d = b.Clock.Now().Sub(start)
			if !bytes.Equal(got, want) {
				t.Errorf("content mismatch (batched=%v)", batched)
			}
			return fs.Close(b, fd)
		})
		return d
	}

	serial, pipelined := elapsed(false), elapsed(true)
	if pipelined >= serial {
		t.Fatalf("batched 8-page read took %v, not faster than %v for 8 sequential reads",
			pipelined, serial)
	}
}

// TestBatchedReadRespectsCachePressure pins the speculative-fetch budget:
// with the cache nearly full, a wide read must not evict resident pages to
// make room for speculation — it still returns correct bytes, just without
// the pipelining headroom.
func TestBatchedReadRespectsCachePressure(t *testing.T) {
	opt := defaultOpt()
	opt.CacheBytes = 4 * opt.PageSize // 4 frames
	pages := 8
	want := make([]byte, pages*int(opt.PageSize))
	rand.New(rand.NewSource(10)).Read(want)

	h := newHarness(t, 1, opt)
	h.write(t, "/big", want)
	fs := h.fss[0]
	h.run(t, 0, func(b *gpu.Block) error {
		fd, err := fs.Open(b, "/big", O_RDONLY)
		if err != nil {
			return err
		}
		got := make([]byte, len(want))
		if n, err := fs.Read(b, fd, got, 0); err != nil || n != len(want) {
			t.Errorf("read under pressure: n=%d err=%v", n, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("content mismatch under cache pressure")
		}
		return fs.Close(b, fd)
	})
}
