package faults

import (
	"testing"

	"gpufs/internal/simtime"
)

// TestXIDScheduleDeterministic pins the XID channel's replay contract: two
// injectors with the same seed raise the identical event log, and a third
// with a different seed diverges.
func TestXIDScheduleDeterministic(t *testing.T) {
	run := func(seed int64) []XIDEvent {
		inj := New(Config{Seed: seed, GPUXIDProb: 0.3})
		var got []XIDEvent
		inj.SubscribeXID(func(ev XIDEvent) { got = append(got, ev) })
		for i := 0; i < 400; i++ {
			inj.MaybeXID(i%4, simtime.Time(i))
		}
		return got
	}
	a, b := run(7), run(7)
	if len(a) == 0 {
		t.Fatal("no XID events fired at 30% over 400 draws")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical XID logs")
	}
}

// TestXIDSeverityClassification checks the code→severity table covers the
// remediation-relevant classes and that unknown codes default critical.
func TestXIDSeverityClassification(t *testing.T) {
	cases := []struct {
		code int
		want XIDSeverity
	}{
		{13, XIDWarn},
		{31, XIDWarn},
		{63, XIDWarn},
		{43, XIDCritical},
		{94, XIDCritical},
		{119, XIDCritical},
		{48, XIDFatal},
		{74, XIDFatal},
		{79, XIDFatal},
		{95, XIDFatal},
		{12345, XIDCritical}, // unknown: conservative default
	}
	for _, tc := range cases {
		ev := XIDEvent{Code: tc.code}
		if got := ev.Severity(); got != tc.want {
			t.Errorf("XID %d severity = %v, want %v", tc.code, got, tc.want)
		}
	}
	if (XIDEvent{Code: 79}).Description() == "unknown XID" {
		t.Error("XID 79 should have a description")
	}
}

// TestXIDInjectAndSubscribe checks explicit injection fans out to every
// subscriber, counts as an injected fault, and respects the enable toggle.
func TestXIDInjectAndSubscribe(t *testing.T) {
	inj := New(Config{Seed: 1})
	var a, b []XIDEvent
	inj.SubscribeXID(func(ev XIDEvent) { a = append(a, ev) })
	inj.SubscribeXID(func(ev XIDEvent) { b = append(b, ev) })

	if !inj.InjectXID(2, 79, 100) {
		t.Fatal("InjectXID reported not fired while enabled")
	}
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("subscribers saw %d/%d events, want 1/1", len(a), len(b))
	}
	want := XIDEvent{GPU: 2, Code: 79, Time: 100}
	if a[0] != want || b[0] != want {
		t.Fatalf("event mismatch: %v / %v, want %v", a[0], b[0], want)
	}
	if got := inj.Injected(GPUXID); got != 1 {
		t.Fatalf("Injected(GPUXID) = %d, want 1", got)
	}

	inj.SetEnabled(false)
	if inj.InjectXID(0, 48, 200) {
		t.Fatal("InjectXID fired while disabled")
	}
	if len(a) != 1 {
		t.Fatalf("disabled injector delivered an event")
	}

	// Nil safety: the whole XID surface must be callable on nil.
	var nilInj *Injector
	nilInj.SubscribeXID(func(XIDEvent) {})
	if nilInj.InjectXID(0, 79, 0) {
		t.Fatal("nil injector fired")
	}
	if _, ok := nilInj.MaybeXID(0, 0); ok {
		t.Fatal("nil injector MaybeXID fired")
	}
}

// TestXIDScheduleShape checks the weighted draw table produces the
// long-tail shape: warnings dominate and fatal events occur but rarely.
func TestXIDScheduleShape(t *testing.T) {
	inj := New(Config{Seed: 42, GPUXIDProb: 1.0})
	counts := map[XIDSeverity]int{}
	const n = 2000
	for i := 0; i < n; i++ {
		ev, ok := inj.MaybeXID(0, simtime.Time(i))
		if !ok {
			t.Fatalf("draw %d did not fire at probability 1", i)
		}
		counts[ev.Severity()]++
	}
	if counts[XIDWarn] <= counts[XIDCritical] || counts[XIDCritical] <= counts[XIDFatal] {
		t.Fatalf("severity shape inverted: warn=%d critical=%d fatal=%d",
			counts[XIDWarn], counts[XIDCritical], counts[XIDFatal])
	}
	if counts[XIDFatal] == 0 {
		t.Fatal("no fatal XIDs in 2000 draws; remediation path untestable from schedule")
	}
}
