package faults

// XID-style device error events. Real NVIDIA drivers report GPU failures
// asynchronously as numbered XID errors in the kernel log; fleet managers
// parse and classify them to decide whether a device merely hiccuped or
// the host must be drained. This file models that channel for the
// simulated machine: events carry a real XID code, classify into the
// severities a remediation policy acts on, and are delivered to
// subscribers (the fleet health monitor) rather than to the faulting
// operation. Events are either drawn deterministically from the injector's
// seeded schedule (MaybeXID, site GPUXID) or raised explicitly by chaos
// drivers (InjectXID).

import (
	"fmt"

	"gpufs/internal/simtime"
	"gpufs/internal/trace"
)

// XIDSeverity classifies an XID code by the remediation it warrants.
type XIDSeverity int

// Severities, in escalating order.
const (
	// XIDWarn is recoverable noise (a retired page, an application
	// fault): log it, count it, keep serving.
	XIDWarn XIDSeverity = iota
	// XIDCritical is a device-level error that individual jobs survive
	// but that erodes trust in the host; a burst of them should cordon
	// it.
	XIDCritical
	// XIDFatal means the device is gone or unreliable (fallen off the
	// bus, uncontained ECC): cordon and drain the host immediately.
	XIDFatal
)

// String names the severity.
func (s XIDSeverity) String() string {
	switch s {
	case XIDWarn:
		return "warn"
	case XIDCritical:
		return "critical"
	case XIDFatal:
		return "fatal"
	}
	return fmt.Sprintf("XIDSeverity(%d)", int(s))
}

// xidInfo describes one known XID code.
type xidInfo struct {
	desc string
	sev  XIDSeverity
}

// xidTable is the subset of driver XID codes the simulation raises,
// with the severity a fleet policy conventionally assigns each.
var xidTable = map[int]xidInfo{
	13:  {"graphics engine exception", XIDWarn},
	31:  {"GPU memory page fault", XIDWarn},
	43:  {"GPU stopped processing", XIDCritical},
	45:  {"preemptive cleanup of user channels", XIDWarn},
	48:  {"double-bit ECC error", XIDFatal},
	63:  {"ECC page retirement recorded", XIDWarn},
	64:  {"ECC page retirement failed", XIDCritical},
	74:  {"NVLink error", XIDFatal},
	79:  {"GPU has fallen off the bus", XIDFatal},
	94:  {"contained ECC error", XIDCritical},
	95:  {"uncontained ECC error", XIDFatal},
	119: {"GSP RPC timeout", XIDCritical},
}

// xidSchedule is the weighted draw table for MaybeXID: warnings dominate,
// critical errors are uncommon, fatal events are rare — the long-tail
// shape of real fleet logs. Entries are (code, cumulative weight ceiling)
// over a 0..99 draw.
var xidSchedule = []struct {
	code    int
	ceiling int
}{
	{13, 30},  // 30%: application-level engine exceptions
	{31, 55},  // 25%: page faults
	{63, 75},  // 20%: page retirements
	{45, 83},  // 8%: channel cleanups
	{43, 90},  // 7%: stopped processing
	{94, 95},  // 5%: contained ECC
	{119, 98}, // 3%: GSP timeout
	{79, 100}, // 2%: off the bus (fatal)
}

// XIDEvent is one device error notification.
type XIDEvent struct {
	// GPU is the device index within its host; the host identity is
	// supplied by whoever subscribed (each host owns its injector).
	GPU int
	// Code is the XID number.
	Code int
	// Time is the virtual time the event was raised.
	Time simtime.Time
}

// Severity classifies the event's code; unknown codes rate XIDCritical
// (a conservative default: unrecognized driver errors are not noise).
func (e XIDEvent) Severity() XIDSeverity {
	if info, ok := xidTable[e.Code]; ok {
		return info.sev
	}
	return XIDCritical
}

// Description renders the code's driver-log description.
func (e XIDEvent) Description() string {
	if info, ok := xidTable[e.Code]; ok {
		return info.desc
	}
	return "unknown XID"
}

// String renders the event driver-log style.
func (e XIDEvent) String() string {
	return fmt.Sprintf("XID %d on GPU %d (%s, %s)", e.Code, e.GPU, e.Description(), e.Severity())
}

// SubscribeXID registers fn to receive every XID event this injector
// raises, synchronously at the raise site. Multiple subscribers stack.
// Safe on nil (no-op).
func (i *Injector) SubscribeXID(fn func(XIDEvent)) {
	if i == nil {
		return
	}
	i.xidMu.Lock()
	i.xidSinks = append(i.xidSinks, fn)
	i.xidMu.Unlock()
}

// deliverXID counts, traces, and fans the event out to subscribers.
func (i *Injector) deliverXID(ev XIDEvent) {
	i.injected[GPUXID].Add(1)
	if t := i.tracer.Load(); t.Enabled() {
		t.Record(trace.Event{
			GPU: ev.GPU, Op: trace.OpFault,
			Path:  fmt.Sprintf("%s-%d", GPUXID, ev.Code),
			Start: ev.Time, End: ev.Time,
		})
	}
	i.xidMu.Lock()
	sinks := make([]func(XIDEvent), len(i.xidSinks))
	copy(sinks, i.xidSinks)
	i.xidMu.Unlock()
	for _, fn := range sinks {
		fn(ev)
	}
}

// InjectXID raises an explicit XID event — the chaos-driver entry point
// (kill a host by raising XID 79). It fires regardless of GPUXIDProb but
// respects the enabled toggle. Safe on nil (no-op, reports false).
func (i *Injector) InjectXID(gpu, code int, now simtime.Time) bool {
	if !i.Enabled() {
		return false
	}
	i.deliverXID(XIDEvent{GPU: gpu, Code: code, Time: now})
	return true
}

// MaybeXID consumes one tick of the GPUXID schedule and, when it fires,
// raises an event whose code is drawn from the weighted table — a pure
// function of (seed, call counter), so a single-threaded driver replays
// the same XID log for a given seed. Safe on nil (never fires).
func (i *Injector) MaybeXID(gpu int, now simtime.Time) (XIDEvent, bool) {
	if !i.Enabled() {
		return XIDEvent{}, false
	}
	p := i.cfg.prob(GPUXID)
	if p <= 0 || i.draw(GPUXID) >= p {
		return XIDEvent{}, false
	}
	pick := int(i.draw(GPUXID) * 100)
	code := xidSchedule[len(xidSchedule)-1].code
	for _, entry := range xidSchedule {
		if pick < entry.ceiling {
			code = entry.code
			break
		}
	}
	ev := XIDEvent{GPU: gpu, Code: code, Time: now}
	i.deliverXID(ev)
	return ev, true
}
