// Package faults is a seeded, deterministic fault-injection layer for the
// GPUfs simulation. Production file servers must survive slow polls, lost
// responses, and I/O errors; the paper's prototype assumes none of these
// happen. This package lets every layer of the stack — the RPC daemon
// (internal/rpc), the host file system and its disk (internal/hostfs,
// internal/disk), and the interconnect (internal/pcie) — ask "does this
// operation fail, and how?" and get an answer that is a pure function of
// the configured seed and a per-site call counter.
//
// Determinism: each injection site keeps its own atomic call counter, and
// every decision hashes (seed, site, counter) through a splitmix64-style
// mixer into a uniform draw. A single-threaded workload therefore replays
// the exact same fault schedule for a given seed; concurrent workloads
// replay the same schedule in distribution. Persistent faults (bad
// sectors) hash (seed, inode, sector) with no counter, so the same sector
// fails on every access — the difference between a transient EIO a retry
// can outlast and a media error it cannot.
//
// All methods are safe on a nil *Injector and return "no fault", so
// components can hold an injector pointer unconditionally and pay one nil
// check on the happy path.
package faults

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"gpufs/internal/simtime"
	"gpufs/internal/trace"
)

// Site identifies one injection point in the stack.
type Site int

// Injection sites.
const (
	// RPCPollDelay delays the CPU daemon's discovery of an enqueued
	// request (a slow poll under host load).
	RPCPollDelay Site = iota
	// RPCDropResponse loses a completed request's response: the daemon
	// did the work but the spinning block never observes the reply and
	// must time out and retry.
	RPCDropResponse
	// RPCDupResponse delivers a response twice; the second copy must be
	// discarded harmlessly.
	RPCDupResponse
	// RPCTransient makes the daemon bounce a request with an
	// EAGAIN-style transient failure before doing any work.
	RPCTransient
	// HostShortRead makes a host pread return fewer bytes than
	// available (not at EOF).
	HostShortRead
	// HostReadEIO fails a host pread with EIO.
	HostReadEIO
	// HostBadSector is the persistent variant of HostReadEIO: a
	// deterministic subset of sectors fails on every read.
	HostBadSector
	// HostWriteEIO fails a host pwrite with EIO, before any mutation.
	HostWriteEIO
	// HostFsyncEIO fails a host fsync with EIO.
	HostFsyncEIO
	// DiskStall adds a latency spike to a disk access.
	DiskStall
	// DMAStall delays a DMA transfer's start.
	DMAStall
	// DMADegrade runs a DMA transfer at degraded link bandwidth.
	DMADegrade
	// GPUXID raises an XID-style device error event (see xid.go): the
	// asynchronous "something is wrong with this GPU" notification a
	// driver surfaces in the kernel log, consumed by fleet health
	// monitoring rather than by the faulting operation itself.
	GPUXID
	numSites
)

var siteNames = [numSites]string{
	"rpc-poll-delay", "rpc-drop-response", "rpc-dup-response", "rpc-transient",
	"host-short-read", "host-read-eio", "host-bad-sector", "host-write-eio",
	"host-fsync-eio", "disk-stall", "dma-stall", "dma-degrade", "gpu-xid",
}

// String names the injection site.
func (s Site) String() string {
	if s >= 0 && int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("Site(%d)", int(s))
}

// NumSites reports the number of injection sites (for iteration in tests).
func NumSites() int { return int(numSites) }

// Config sets the per-site fault probabilities and magnitudes. The zero
// value injects nothing.
type Config struct {
	// Seed selects the deterministic fault schedule.
	Seed int64

	// RPCPollDelayProb is the chance a request's poll is slow;
	// RPCPollDelayMax bounds the extra delay (default 100µs).
	RPCPollDelayProb float64
	RPCPollDelayMax  simtime.Duration
	// RPCDropResponseProb is the chance a completed request's response
	// is lost (client times out and retries; the server-side dedup ring
	// keeps the retry from re-applying the operation).
	RPCDropResponseProb float64
	// RPCDupResponseProb is the chance a response is delivered twice.
	RPCDupResponseProb float64
	// RPCTransientProb is the chance the daemon bounces a request with
	// a retryable EAGAIN before doing any work.
	RPCTransientProb float64

	// HostShortReadProb is the chance a host pread returns short.
	HostShortReadProb float64
	// HostReadEIOProb is the chance a host pread fails with EIO.
	HostReadEIOProb float64
	// BadSectorRate makes a deterministic fraction of 4 KiB sectors
	// permanently unreadable: the same sector fails on every read, so
	// RPC retries cannot mask it.
	BadSectorRate float64
	// HostWriteEIOProb is the chance a host pwrite fails with EIO
	// before mutating anything.
	HostWriteEIOProb float64
	// HostFsyncEIOProb is the chance a host fsync fails with EIO.
	HostFsyncEIOProb float64

	// DiskStallProb adds up to DiskStallMax (default 2ms) of latency to
	// a disk access.
	DiskStallProb float64
	DiskStallMax  simtime.Duration

	// DMAStallProb delays a DMA start by up to DMAStallMax (default
	// 500µs); DMADegradeProb runs a transfer at DMADegradeFactor of the
	// link bandwidth (default 0.25).
	DMAStallProb     float64
	DMAStallMax      simtime.Duration
	DMADegradeProb   float64
	DMADegradeFactor float64

	// GPUXIDProb is the per-draw chance MaybeXID raises an XID-style
	// device error event; the code is drawn from the weighted table in
	// xid.go, so most scheduled events are warnings and a deterministic
	// minority are fatal.
	GPUXIDProb float64
}

func (c *Config) prob(s Site) float64 {
	switch s {
	case RPCPollDelay:
		return c.RPCPollDelayProb
	case RPCDropResponse:
		return c.RPCDropResponseProb
	case RPCDupResponse:
		return c.RPCDupResponseProb
	case RPCTransient:
		return c.RPCTransientProb
	case HostShortRead:
		return c.HostShortReadProb
	case HostReadEIO:
		return c.HostReadEIOProb
	case HostBadSector:
		return c.BadSectorRate
	case HostWriteEIO:
		return c.HostWriteEIOProb
	case HostFsyncEIO:
		return c.HostFsyncEIOProb
	case DiskStall:
		return c.DiskStallProb
	case DMAStall:
		return c.DMAStallProb
	case DMADegrade:
		return c.DMADegradeProb
	case GPUXID:
		return c.GPUXIDProb
	}
	return 0
}

func (c *Config) magnitude(s Site) simtime.Duration {
	switch s {
	case RPCPollDelay:
		return c.RPCPollDelayMax
	case DiskStall:
		return c.DiskStallMax
	case DMAStall:
		return c.DMAStallMax
	}
	return 0
}

// badSectorSize is the granularity of persistent read failures.
const badSectorSize = 4096

// Injector draws deterministic fault decisions. One Injector serves the
// whole machine; it is safe for concurrent use.
type Injector struct {
	cfg     Config
	enabled atomic.Bool

	calls    [numSites]atomic.Int64 // per-site draw counters (the schedule)
	injected [numSites]atomic.Int64 // per-site fired counters (stats)

	tracer atomic.Pointer[trace.Tracer]

	// xidSinks receive every XID event raised through this injector
	// (see xid.go); guarded by xidMu.
	xidMu    sync.Mutex
	xidSinks []func(XIDEvent)
}

// New creates an injector for the given config, enabled, with defaulted
// magnitudes.
func New(cfg Config) *Injector {
	if cfg.RPCPollDelayMax <= 0 {
		cfg.RPCPollDelayMax = 100 * simtime.Microsecond
	}
	if cfg.DiskStallMax <= 0 {
		cfg.DiskStallMax = 2 * simtime.Millisecond
	}
	if cfg.DMAStallMax <= 0 {
		cfg.DMAStallMax = 500 * simtime.Microsecond
	}
	if cfg.DMADegradeFactor <= 0 || cfg.DMADegradeFactor > 1 {
		cfg.DMADegradeFactor = 0.25
	}
	inj := &Injector{cfg: cfg}
	inj.enabled.Store(true)
	return inj
}

// Config returns the injector's (defaulted) configuration.
func (i *Injector) Config() Config { return i.cfg }

// Enabled reports whether injection is active. Safe on nil.
func (i *Injector) Enabled() bool { return i != nil && i.enabled.Load() }

// SetEnabled toggles injection without losing counters — tests disable it
// around verification phases. Safe on nil (no-op).
func (i *Injector) SetEnabled(on bool) {
	if i != nil {
		i.enabled.Store(on)
	}
}

// SetTracer attaches a tracer; injected faults (and the RPC layer's
// retries) then appear as events among the workload's operations.
func (i *Injector) SetTracer(t *trace.Tracer) {
	if i != nil {
		i.tracer.Store(t)
	}
}

// RecordEvent forwards an event to the attached tracer, if any. The RPC
// layer uses this to trace its retries next to the injector's faults.
func (i *Injector) RecordEvent(e trace.Event) {
	if i == nil {
		return
	}
	if t := i.tracer.Load(); t.Enabled() {
		t.Record(e)
	}
}

// mix is the splitmix64 finalizer: a bijective avalanche mixer.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to a uniform float in [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// draw consumes one tick of the site's schedule and returns its uniform
// variate.
func (i *Injector) draw(s Site) float64 {
	n := i.calls[s].Add(1)
	return unit(mix(mix(uint64(i.cfg.Seed)+uint64(s)*0x9e3779b9) + uint64(n)))
}

// fire records an injection at site s for stats and tracing.
func (i *Injector) fire(s Site, now simtime.Time) {
	i.injected[s].Add(1)
	if t := i.tracer.Load(); t.Enabled() {
		t.Record(trace.Event{
			GPU: -1, Op: trace.OpFault, Path: s.String(),
			Start: now, End: now,
		})
	}
}

// Should draws the site's next scheduled decision and reports whether the
// fault fires at virtual time now. Safe on nil (never fires).
func (i *Injector) Should(s Site, now simtime.Time) bool {
	if !i.Enabled() {
		return false
	}
	p := i.cfg.prob(s)
	if p <= 0 || i.draw(s) >= p {
		return false
	}
	i.fire(s, now)
	return true
}

// ShouldOn is Should with attribution: a fired fault's trace event is
// stamped with the GPU and ring shard (1-based; 0 = unsharded) where the
// fault landed, so per-shard lanes render distinctly in trace exports.
// The draw schedule is identical to Should — sharded and unsharded callers
// consume the same deterministic sequence. Safe on nil (never fires).
func (i *Injector) ShouldOn(s Site, now simtime.Time, gpu, shard int) bool {
	if !i.Enabled() {
		return false
	}
	p := i.cfg.prob(s)
	if p <= 0 || i.draw(s) >= p {
		return false
	}
	i.injected[s].Add(1)
	if t := i.tracer.Load(); t.Enabled() {
		t.Record(trace.Event{
			GPU: gpu, Shard: shard, Op: trace.OpFault, Path: s.String(),
			Start: now, End: now,
		})
	}
	return true
}

// Delay draws a deterministic duration in (0, max] for a fired delay-class
// site, where max is the site's configured magnitude.
func (i *Injector) Delay(s Site) simtime.Duration {
	if !i.Enabled() {
		return 0
	}
	max := i.cfg.magnitude(s)
	if max <= 0 {
		return 0
	}
	d := simtime.Duration(i.draw(s) * float64(max))
	if d < simtime.Microsecond {
		d = simtime.Microsecond
	}
	return d
}

// Fraction draws a uniform variate in [0, 1) from the site's schedule
// (used to size short reads).
func (i *Injector) Fraction(s Site) float64 {
	if !i.Enabled() {
		return 0
	}
	return i.draw(s)
}

// DegradeFactor reports the configured bandwidth-degradation factor.
func (i *Injector) DegradeFactor() float64 {
	if i == nil {
		return 1
	}
	return i.cfg.DMADegradeFactor
}

// BadSector reports whether the sector holding (ino, off) is permanently
// unreadable. The decision hashes (seed, ino, sector) with no counter, so
// it is stable across retries — the persistent-media-error class. Safe on
// nil.
func (i *Injector) BadSector(ino, off int64, now simtime.Time) bool {
	if !i.Enabled() || i.cfg.BadSectorRate <= 0 {
		return false
	}
	sector := off / badSectorSize
	h := mix(mix(uint64(i.cfg.Seed)^0xbad5ec7042) + mix(uint64(ino))*31 + uint64(sector))
	if unit(h) >= i.cfg.BadSectorRate {
		return false
	}
	i.injected[HostBadSector].Add(1)
	if t := i.tracer.Load(); t.Enabled() {
		t.Record(trace.Event{
			GPU: -1, Op: trace.OpFault, Path: HostBadSector.String(),
			Offset: off, Start: now, End: now,
		})
	}
	return true
}

// Injected reports how many times site s fired. Safe on nil.
func (i *Injector) Injected(s Site) int64 {
	if i == nil {
		return 0
	}
	return i.injected[s].Load()
}

// TotalInjected reports the total fault count across all sites. Safe on
// nil.
func (i *Injector) TotalInjected() int64 {
	if i == nil {
		return 0
	}
	var n int64
	for s := range i.injected {
		n += i.injected[s].Load()
	}
	return n
}

// FormatCounts renders the per-site injection counters (diagnostics).
func (i *Injector) FormatCounts() string {
	if i == nil {
		return "(no injector)"
	}
	var b strings.Builder
	for s := Site(0); s < numSites; s++ {
		if n := i.injected[s].Load(); n > 0 {
			fmt.Fprintf(&b, "%s=%d ", s, n)
		}
	}
	if b.Len() == 0 {
		return "(no faults injected)"
	}
	return strings.TrimSpace(b.String())
}
