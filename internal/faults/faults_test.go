package faults

import (
	"testing"

	"gpufs/internal/simtime"
	"gpufs/internal/trace"
)

func TestNilInjectorIsSafe(t *testing.T) {
	var inj *Injector
	if inj.Enabled() {
		t.Fatalf("nil injector reports enabled")
	}
	inj.SetEnabled(true) // no-op, must not panic
	inj.SetTracer(nil)
	inj.RecordEvent(trace.Event{})
	if inj.Should(RPCDropResponse, 0) {
		t.Fatalf("nil injector fired")
	}
	if inj.Delay(DiskStall) != 0 {
		t.Fatalf("nil injector produced a delay")
	}
	if inj.Fraction(HostShortRead) != 0 {
		t.Fatalf("nil injector produced a fraction")
	}
	if inj.BadSector(1, 0, 0) {
		t.Fatalf("nil injector reported a bad sector")
	}
	if inj.Injected(DiskStall) != 0 || inj.TotalInjected() != 0 {
		t.Fatalf("nil injector has counters")
	}
	if inj.DegradeFactor() != 1 {
		t.Fatalf("nil injector degrades bandwidth")
	}
	if got := inj.FormatCounts(); got != "(no injector)" {
		t.Fatalf("FormatCounts on nil = %q", got)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, RPCDropResponseProb: 0.3, DiskStallProb: 0.2}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 1000; i++ {
		now := simtime.Time(i)
		if a.Should(RPCDropResponse, now) != b.Should(RPCDropResponse, now) {
			t.Fatalf("draw %d diverged between identical injectors", i)
		}
		da, db := a.Delay(DiskStall), b.Delay(DiskStall)
		if da != db {
			t.Fatalf("delay draw %d diverged: %v vs %v", i, da, db)
		}
	}
	if a.Injected(RPCDropResponse) != b.Injected(RPCDropResponse) {
		t.Fatalf("injection counts diverged")
	}
	if a.Injected(RPCDropResponse) == 0 {
		t.Fatalf("0.3 probability never fired in 1000 draws")
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	mk := func(seed int64) string {
		inj := New(Config{Seed: seed, RPCTransientProb: 0.5})
		out := make([]byte, 64)
		for i := range out {
			if inj.Should(RPCTransient, 0) {
				out[i] = 1
			}
		}
		return string(out)
	}
	if mk(1) == mk(2) {
		t.Fatalf("seeds 1 and 2 produced the identical 64-draw schedule")
	}
}

func TestFireRateTracksProbability(t *testing.T) {
	const n = 20000
	inj := New(Config{Seed: 7, RPCTransientProb: 0.25})
	for i := 0; i < n; i++ {
		inj.Should(RPCTransient, 0)
	}
	got := float64(inj.Injected(RPCTransient)) / n
	if got < 0.22 || got > 0.28 {
		t.Fatalf("fire rate %.3f far from configured 0.25", got)
	}
}

func TestBadSectorIsPersistent(t *testing.T) {
	inj := New(Config{Seed: 9, BadSectorRate: 0.1})
	// Find a bad sector, then confirm every re-probe agrees (no counter —
	// the decision is a pure function of (seed, ino, sector)).
	var badOff int64 = -1
	for off := int64(0); off < 400*4096; off += 4096 {
		if inj.BadSector(5, off, 0) {
			badOff = off
			break
		}
	}
	if badOff < 0 {
		t.Fatalf("rate 0.1 marked no sector bad in 400 sectors")
	}
	for i := 0; i < 10; i++ {
		if !inj.BadSector(5, badOff, 0) {
			t.Fatalf("bad sector healed on probe %d", i)
		}
	}
	// Same offset, different inode: an independent decision, and offsets
	// within one sector share the verdict.
	if !inj.BadSector(5, badOff+100, 0) {
		t.Fatalf("offset within the bad sector not bad")
	}
}

func TestSetEnabledSuppressesInjection(t *testing.T) {
	inj := New(Config{Seed: 3, RPCDropResponseProb: 1.0, BadSectorRate: 1.0})
	inj.SetEnabled(false)
	if inj.Should(RPCDropResponse, 0) || inj.BadSector(1, 0, 0) {
		t.Fatalf("disabled injector fired")
	}
	inj.SetEnabled(true)
	if !inj.Should(RPCDropResponse, 0) || !inj.BadSector(1, 0, 0) {
		t.Fatalf("re-enabled injector did not fire at probability 1")
	}
}

func TestDelayBounds(t *testing.T) {
	inj := New(Config{Seed: 11, DiskStallProb: 1, DiskStallMax: 2 * simtime.Millisecond})
	for i := 0; i < 1000; i++ {
		d := inj.Delay(DiskStall)
		if d < simtime.Microsecond || d > 2*simtime.Millisecond {
			t.Fatalf("delay %v outside (0, max]", d)
		}
	}
}

func TestDefaultedMagnitudes(t *testing.T) {
	inj := New(Config{Seed: 1})
	cfg := inj.Config()
	if cfg.RPCPollDelayMax <= 0 || cfg.DiskStallMax <= 0 || cfg.DMAStallMax <= 0 {
		t.Fatalf("magnitudes not defaulted: %+v", cfg)
	}
	if cfg.DMADegradeFactor <= 0 || cfg.DMADegradeFactor > 1 {
		t.Fatalf("degrade factor not defaulted: %v", cfg.DMADegradeFactor)
	}
}

func TestTracerSeesFaults(t *testing.T) {
	inj := New(Config{Seed: 5, DiskStallProb: 1})
	tr := trace.New(16)
	tr.Enable(true)
	inj.SetTracer(tr)
	if !inj.Should(DiskStall, 123) {
		t.Fatalf("probability-1 site did not fire")
	}
	evs := tr.Snapshot()
	if len(evs) != 1 || evs[0].Op != trace.OpFault || evs[0].Path != DiskStall.String() {
		t.Fatalf("fault event not traced: %+v", evs)
	}
	if evs[0].Start != 123 {
		t.Fatalf("fault event timestamp = %v", evs[0].Start)
	}
}

func TestSiteNames(t *testing.T) {
	for s := Site(0); int(s) < NumSites(); s++ {
		if s.String() == "" {
			t.Fatalf("site %d unnamed", s)
		}
	}
	if Site(999).String() != "Site(999)" {
		t.Fatalf("out-of-range site name: %s", Site(999))
	}
}
