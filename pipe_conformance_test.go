package gpufs_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"gpufs"
	"gpufs/internal/gsys"
	"gpufs/internal/simtime"
)

// gpipe conformance (ISSUE 7 acceptance): across randomized schedules —
// random capacities, record sizes, producer counts, and think times — the
// pipe must deliver every record exactly once, in per-writer order, and
// never let the consumer observe a byte before the virtual time its
// producer finished writing it.

// pipeRecord is the conformance framing: writer id + per-writer sequence
// number + payload length, then a payload derived from (writer, seq).
const confHeader = 12

func confPayload(writer, seq, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(writer*131 + seq*7 + i)
	}
	return p
}

// onePipeSchedule drives one randomized producer/consumer schedule and
// checks delivery and virtual-time ordering.
func onePipeSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	cfg := gpufs.ScaledConfig(1.0 / 256)
	cfg.NumGPUs = 2
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		t.Fatalf("seed %d: NewSystem: %v", seed, err)
	}

	writers := 1 + rng.Intn(2)
	capBytes := 512 + rng.Intn(4096)
	maxRec := capBytes - confHeader
	if maxRec > 1500 {
		maxRec = 1500
	}
	recsPerWriter := 8 + rng.Intn(25)
	name := fmt.Sprintf("conf-%d", seed)

	// sentAt[writer][seq] is the writer's virtual clock right after the
	// write returned — i.e. the D2H completion time of the record.
	sentAt := make([][]simtime.Time, writers)
	sizes := make([][]int, writers)
	for w := range sentAt {
		sentAt[w] = make([]simtime.Time, recsPerWriter)
		sizes[w] = make([]int, recsPerWriter)
		for s := range sizes[w] {
			sizes[w][s] = 1 + rng.Intn(maxRec)
		}
	}
	// Pre-draw think times so kernel bodies stay deterministic given the
	// schedule (rng is not safe across goroutines).
	think := make([][]simtime.Duration, writers)
	for w := range think {
		think[w] = make([]simtime.Duration, recsPerWriter)
		for s := range think[w] {
			think[w][s] = simtime.Duration(rng.Intn(40_000))
		}
	}
	readThink := make([]simtime.Duration, writers*recsPerWriter+8)
	for i := range readThink {
		readThink[i] = simtime.Duration(rng.Intn(25_000))
	}
	readBuf := 64 + rng.Intn(4*capBytes)

	type got struct {
		writer, seq, size int
		at                simtime.Time
		payload           []byte
	}
	var received []got

	var wg sync.WaitGroup
	var prodErr, consErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, prodErr = sys.GPU(0).Launch(0, writers, 32, func(c *gpufs.BlockCtx) error {
			w := c.Idx
			pd, err := c.GpipeOpen(name, gpufs.PipeWriter, capBytes, writers)
			if err != nil {
				return err
			}
			rec := make([]byte, confHeader+maxRec)
			for s := 0; s < recsPerWriter; s++ {
				c.Busy(think[w][s])
				n := sizes[w][s]
				binary.LittleEndian.PutUint32(rec[0:4], uint32(w))
				binary.LittleEndian.PutUint32(rec[4:8], uint32(s))
				binary.LittleEndian.PutUint32(rec[8:12], uint32(n))
				copy(rec[confHeader:], confPayload(w, s, n))
				if _, err := c.GpipeWrite(pd, rec[:confHeader+n]); err != nil {
					return fmt.Errorf("writer %d rec %d: %w", w, s, err)
				}
				sentAt[w][s] = c.Clock.Now()
			}
			return c.GpipeClose(pd, gpufs.PipeWriter)
		})
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, consErr = sys.GPU(1).Launch(0, 1, 32, func(c *gpufs.BlockCtx) error {
			pd, err := c.GpipeOpen(name, gpufs.PipeReader, capBytes, writers)
			if err != nil {
				return err
			}
			scratch := make([]byte, readBuf)
			var pending []byte
			reads := 0
			for {
				n, err := c.GpipeRead(pd, scratch)
				if err == io.EOF {
					break
				}
				if err != nil {
					if errors.Is(err, gsys.ErrPipeEmpty) {
						return fmt.Errorf("would-block leaked to caller: %w", err)
					}
					return err
				}
				if reads < len(readThink) {
					c.Busy(readThink[reads])
					reads++
				}
				now := c.Clock.Now()
				pending = append(pending, scratch[:n]...)
				for len(pending) >= confHeader {
					w := int(binary.LittleEndian.Uint32(pending[0:4]))
					s := int(binary.LittleEndian.Uint32(pending[4:8]))
					sz := int(binary.LittleEndian.Uint32(pending[8:12]))
					if len(pending) < confHeader+sz {
						break
					}
					received = append(received, got{
						writer: w, seq: s, size: sz, at: now,
						payload: append([]byte(nil), pending[confHeader:confHeader+sz]...),
					})
					pending = pending[confHeader+sz:]
				}
			}
			if len(pending) != 0 {
				return fmt.Errorf("stream ended mid-record (%d stray bytes)", len(pending))
			}
			return c.GpipeClose(pd, gpufs.PipeReader)
		})
	}()
	wg.Wait()
	if prodErr != nil {
		t.Fatalf("seed %d: producer: %v", seed, prodErr)
	}
	if consErr != nil {
		t.Fatalf("seed %d: consumer: %v", seed, consErr)
	}

	// Exactly-once, in per-writer order, bytes intact.
	if len(received) != writers*recsPerWriter {
		t.Fatalf("seed %d: received %d records, want %d", seed, len(received), writers*recsPerWriter)
	}
	nextSeq := make([]int, writers)
	for i, g := range received {
		if g.writer < 0 || g.writer >= writers {
			t.Fatalf("seed %d: record %d from unknown writer %d", seed, i, g.writer)
		}
		if g.seq != nextSeq[g.writer] {
			t.Fatalf("seed %d: writer %d records out of order: got seq %d, want %d",
				seed, g.writer, g.seq, nextSeq[g.writer])
		}
		nextSeq[g.writer]++
		if g.size != sizes[g.writer][g.seq] {
			t.Fatalf("seed %d: writer %d rec %d is %d bytes, want %d",
				seed, g.writer, g.seq, g.size, sizes[g.writer][g.seq])
		}
		want := confPayload(g.writer, g.seq, g.size)
		for j := range want {
			if g.payload[j] != want[j] {
				t.Fatalf("seed %d: writer %d rec %d corrupted at byte %d", seed, g.writer, g.seq, j)
			}
		}
		// Virtual-time causality: the consumer's clock at the read that
		// delivered this record is no earlier than the producer's clock
		// when the write completed (the record's D2H landing time).
		if g.at < sentAt[g.writer][g.seq] {
			t.Fatalf("seed %d: writer %d rec %d consumed at %v before written at %v",
				seed, g.writer, g.seq, g.at, sentAt[g.writer][g.seq])
		}
	}
}

// TestGpipeConformance runs 100 randomized schedules (ISSUE 7
// acceptance): varying pipe capacity, writer count, record sizes, and
// producer/consumer think times.
func TestGpipeConformance(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		onePipeSchedule(t, seed)
	}
}

// TestGpipeBrokenPipe checks EPIPE semantics: once the reader closes its
// end, a blocked or future write fails with ErrPipeBroken instead of
// waiting forever on space that cannot free.
func TestGpipeBrokenPipe(t *testing.T) {
	cfg := gpufs.ScaledConfig(1.0 / 256)
	cfg.NumGPUs = 2
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	const capBytes = 1024
	var wg sync.WaitGroup
	var wErr, rErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, wErr = sys.GPU(0).Launch(0, 1, 32, func(c *gpufs.BlockCtx) error {
			pd, err := c.GpipeOpen("epipe", gpufs.PipeWriter, capBytes, 1)
			if err != nil {
				return err
			}
			rec := make([]byte, 512)
			for i := 0; ; i++ {
				if _, err := c.GpipeWrite(pd, rec); err != nil {
					if !errors.Is(err, gsys.ErrPipeBroken) {
						return fmt.Errorf("write %d: got %v, want ErrPipeBroken", i, err)
					}
					return nil
				}
			}
		})
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, rErr = sys.GPU(1).Launch(0, 1, 32, func(c *gpufs.BlockCtx) error {
			pd, err := c.GpipeOpen("epipe", gpufs.PipeReader, capBytes, 1)
			if err != nil {
				return err
			}
			// Consume one record, then walk away.
			if _, err := c.GpipeRead(pd, make([]byte, 512)); err != nil {
				return err
			}
			return c.GpipeClose(pd, gpufs.PipeReader)
		})
	}()
	wg.Wait()
	if wErr != nil {
		t.Fatalf("writer: %v", wErr)
	}
	if rErr != nil {
		t.Fatalf("reader: %v", rErr)
	}
}

// onePipeScheduleMigrated interposes a live migration in the record
// stream (ISSUE 10): producers write the whole stream and close on the
// SOURCE machine, a consumer there drains only part of it, and the pipe
// — with its buffered remainder — is exported and restored onto a brand
// new machine, where a second consumer drains it to EOF. Across the cut
// every record must arrive exactly once, in per-writer order, bytes
// intact: buffered records survive a migration or the pipe breaks
// loudly, never a silent loss or duplicate.
func onePipeScheduleMigrated(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	cfg := gpufs.ScaledConfig(1.0 / 256)
	cfg.NumGPUs = 2
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		t.Fatalf("seed %d: NewSystem: %v", seed, err)
	}

	writers := 1 + rng.Intn(2)
	capBytes := 512 + rng.Intn(4096)
	maxRec := capBytes - confHeader
	if maxRec > 1500 {
		maxRec = 1500
	}
	recsPerWriter := 8 + rng.Intn(25)
	name := fmt.Sprintf("conf-mig-%d", seed)

	sizes := make([][]int, writers)
	totalBytes := 0
	for w := range sizes {
		sizes[w] = make([]int, recsPerWriter)
		for s := range sizes[w] {
			sizes[w][s] = 1 + rng.Intn(maxRec)
			totalBytes += confHeader + sizes[w][s]
		}
	}
	think := make([][]simtime.Duration, writers)
	for w := range think {
		think[w] = make([]simtime.Duration, recsPerWriter)
		for s := range think[w] {
			think[w][s] = simtime.Duration(rng.Intn(40_000))
		}
	}
	readBuf := 64 + rng.Intn(2*capBytes)
	// The source consumer stops here, leaving up to half the capacity
	// buffered for the migration; past this point the producers can
	// always finish and close without further reads.
	target := totalBytes - capBytes/2

	type got struct {
		writer, seq, size int
		payload           []byte
	}
	var received []got
	var pending []byte
	parse := func(buf []byte) {
		pending = append(pending, buf...)
		for len(pending) >= confHeader {
			w := int(binary.LittleEndian.Uint32(pending[0:4]))
			s := int(binary.LittleEndian.Uint32(pending[4:8]))
			sz := int(binary.LittleEndian.Uint32(pending[8:12]))
			if len(pending) < confHeader+sz {
				break
			}
			received = append(received, got{
				writer: w, seq: s, size: sz,
				payload: append([]byte(nil), pending[confHeader:confHeader+sz]...),
			})
			pending = pending[confHeader+sz:]
		}
	}

	var wg sync.WaitGroup
	var prodErr, consErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, prodErr = sys.GPU(0).Launch(0, writers, 32, func(c *gpufs.BlockCtx) error {
			w := c.Idx
			pd, err := c.GpipeOpen(name, gpufs.PipeWriter, capBytes, writers)
			if err != nil {
				return err
			}
			rec := make([]byte, confHeader+maxRec)
			for s := 0; s < recsPerWriter; s++ {
				c.Busy(think[w][s])
				n := sizes[w][s]
				binary.LittleEndian.PutUint32(rec[0:4], uint32(w))
				binary.LittleEndian.PutUint32(rec[4:8], uint32(s))
				binary.LittleEndian.PutUint32(rec[8:12], uint32(n))
				copy(rec[confHeader:], confPayload(w, s, n))
				if _, err := c.GpipeWrite(pd, rec[:confHeader+n]); err != nil {
					return fmt.Errorf("writer %d rec %d: %w", w, s, err)
				}
			}
			return c.GpipeClose(pd, gpufs.PipeWriter)
		})
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if target <= 0 {
			return // whole stream fits buffered; migrate all of it
		}
		_, consErr = sys.GPU(1).Launch(0, 1, 32, func(c *gpufs.BlockCtx) error {
			pd, err := c.GpipeOpen(name, gpufs.PipeReader, capBytes, writers)
			if err != nil {
				return err
			}
			scratch := make([]byte, readBuf)
			consumed := 0
			for consumed < target {
				n, err := c.GpipeRead(pd, scratch)
				if err == io.EOF {
					break
				}
				if err != nil {
					return err
				}
				consumed += n
				parse(scratch[:n])
			}
			// Deliberately no GpipeClose: a closed reader condemns the
			// pipe, and this reader's host is about to be migrated away.
			return nil
		})
	}()
	wg.Wait()
	if prodErr != nil {
		t.Fatalf("seed %d: producer: %v", seed, prodErr)
	}
	if consErr != nil {
		t.Fatalf("seed %d: source consumer: %v", seed, consErr)
	}

	imgs := sys.Syscalls().ExportPipes()
	foundIntact := false
	for i := range imgs {
		if imgs[i].Name == name {
			foundIntact = true
			if imgs[i].Broken != "" {
				t.Fatalf("seed %d: pipe exported broken (%q) though all writers closed", seed, imgs[i].Broken)
			}
		}
	}
	if !foundIntact {
		t.Fatalf("seed %d: pipe missing from the export", seed)
	}

	sys2, err := gpufs.NewSystem(cfg)
	if err != nil {
		t.Fatalf("seed %d: NewSystem (target): %v", seed, err)
	}
	sys2.Syscalls().RestorePipes(imgs)

	if _, err := sys2.GPU(1).Launch(0, 1, 32, func(c *gpufs.BlockCtx) error {
		pd, err := c.GpipeOpen(name, gpufs.PipeReader, capBytes, writers)
		if err != nil {
			return err
		}
		scratch := make([]byte, readBuf)
		for {
			n, err := c.GpipeRead(pd, scratch)
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			parse(scratch[:n])
		}
		if len(pending) != 0 {
			return fmt.Errorf("stream ended mid-record (%d stray bytes)", len(pending))
		}
		return c.GpipeClose(pd, gpufs.PipeReader)
	}); err != nil {
		t.Fatalf("seed %d: restored consumer: %v", seed, err)
	}

	if len(received) != writers*recsPerWriter {
		t.Fatalf("seed %d: received %d records across the migration, want %d",
			seed, len(received), writers*recsPerWriter)
	}
	nextSeq := make([]int, writers)
	for i, g := range received {
		if g.writer < 0 || g.writer >= writers {
			t.Fatalf("seed %d: record %d from unknown writer %d", seed, i, g.writer)
		}
		if g.seq != nextSeq[g.writer] {
			t.Fatalf("seed %d: writer %d records out of order across migration: got seq %d, want %d",
				seed, g.writer, g.seq, nextSeq[g.writer])
		}
		nextSeq[g.writer]++
		if g.size != sizes[g.writer][g.seq] {
			t.Fatalf("seed %d: writer %d rec %d is %d bytes, want %d",
				seed, g.writer, g.seq, g.size, sizes[g.writer][g.seq])
		}
		want := confPayload(g.writer, g.seq, g.size)
		for j := range want {
			if g.payload[j] != want[j] {
				t.Fatalf("seed %d: writer %d rec %d corrupted at byte %d", seed, g.writer, g.seq, j)
			}
		}
	}
}

// TestGpipeConformanceMigrated runs the 100-schedule conformance suite
// with a live migration interposed mid-stream (ISSUE 10).
func TestGpipeConformanceMigrated(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		onePipeScheduleMigrated(t, seed)
	}
}

// TestGpipeMigrateSeveredWriter: a pipe with a LIVE writer at checkpoint
// time cannot migrate — its unwritten tail dies with the source host —
// so the restored pipe must fail loudly with EPIPE before delivering a
// single byte, never a silently truncated stream.
func TestGpipeMigrateSeveredWriter(t *testing.T) {
	cfg := gpufs.ScaledConfig(1.0 / 256)
	cfg.NumGPUs = 2
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	const capBytes = 1024
	wrote := make(chan struct{})
	var wg sync.WaitGroup
	var wErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, wErr = sys.GPU(0).Launch(0, 1, 32, func(c *gpufs.BlockCtx) error {
			pd, err := c.GpipeOpen("severed", gpufs.PipeWriter, capBytes, 1)
			if err != nil {
				return err
			}
			if _, err := c.GpipeWrite(pd, make([]byte, 256)); err != nil {
				return err
			}
			close(wrote)
			// Keep writing without ever closing: the writer is live when
			// the checkpoint cuts, until BreakPipe releases it below.
			for {
				if _, err := c.GpipeWrite(pd, make([]byte, 256)); err != nil {
					if errors.Is(err, gsys.ErrPipeBroken) {
						return nil
					}
					return err
				}
			}
		})
	}()
	<-wrote
	imgs := sys.Syscalls().ExportPipes()
	// Release the stranded source writer (its host is being torn down).
	sys.Syscalls().BreakPipe("severed", gsys.ErrPipeBroken)
	wg.Wait()
	if wErr != nil {
		t.Fatalf("writer: %v", wErr)
	}

	var img *struct {
		broken string
		chunks int
	}
	for i := range imgs {
		if imgs[i].Name == "severed" {
			img = &struct {
				broken string
				chunks int
			}{imgs[i].Broken, len(imgs[i].Chunks)}
		}
	}
	if img == nil {
		t.Fatal("severed pipe missing from the export")
	}
	if img.broken == "" || img.chunks != 0 {
		t.Fatalf("live-writer pipe exported as intact (broken=%q, %d chunks); want severed with no data",
			img.broken, img.chunks)
	}

	sys2, err := gpufs.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem (target): %v", err)
	}
	sys2.Syscalls().RestorePipes(imgs)
	if _, err := sys2.GPU(1).Launch(0, 1, 32, func(c *gpufs.BlockCtx) error {
		pd, err := c.GpipeOpen("severed", gpufs.PipeReader, capBytes, 1)
		if err != nil {
			return err
		}
		n, err := c.GpipeRead(pd, make([]byte, 256))
		if err == nil || err == io.EOF {
			return fmt.Errorf("read on severed pipe returned n=%d err=%v; want EPIPE", n, err)
		}
		if !errors.Is(err, gsys.ErrPipeBroken) {
			return fmt.Errorf("read on severed pipe: %v, want ErrPipeBroken", err)
		}
		return nil
	}); err != nil {
		t.Fatalf("restored consumer: %v", err)
	}
}
