// Package gpufs is a reproduction, in simulation, of "GPUfs: Integrating a
// File System with GPUs" (Silberstein, Ford, Keidar, Witchel — ASPLOS
// 2013): a POSIX-like file system API for GPU kernels, backed by a
// GPU-resident buffer cache and a GPU→CPU RPC protocol.
//
// Since Go cannot execute code on a GPU, the package simulates the hardware
// the paper targets — a multi-GPU FERMI-class machine — and implements
// GPUfs itself, unchanged in structure, on top of the simulation.
// Threadblocks are goroutines and the buffer cache's lock-free structures
// are contended by real concurrency; performance is accounted in virtual
// time calibrated to the paper's measured hardware constants.
//
// # Usage
//
// Build a System (host + GPUs), populate the host file system, and launch
// GPU kernels whose threadblocks use the GPUfs API:
//
//	cfg := gpufs.ScaledConfig(1.0 / 32)
//	sys, err := gpufs.NewSystem(cfg)
//	...
//	sys.WriteHostFile("/data/in", input)
//	end, err := sys.GPU(0).Launch(0, 28, 512, func(c *gpufs.BlockCtx) error {
//		fd, err := c.Gopen("/data/in", gpufs.O_RDONLY)
//		if err != nil {
//			return err
//		}
//		defer c.Gclose(fd)
//		buf := make([]byte, 4096)
//		_, err = c.Gread(fd, buf, int64(c.Idx)*4096)
//		return err
//	})
//
// The GPUfs calls are collective at threadblock granularity, exactly like
// the paper's prototype: each block invokes them once, on behalf of all its
// threads.
package gpufs

import (
	"fmt"

	"gpufs/internal/ckpt"
	"gpufs/internal/core"
	"gpufs/internal/faults"
	"gpufs/internal/gpu"
	"gpufs/internal/gsys"
	"gpufs/internal/hostfs"
	"gpufs/internal/metrics"
	"gpufs/internal/params"
	"gpufs/internal/pcie"
	"gpufs/internal/rpc"
	"gpufs/internal/simtime"
	"gpufs/internal/trace"
	"gpufs/internal/wrapfs"
)

// Config is the full machine and library configuration; see
// internal/params for field documentation. DefaultConfig matches the
// paper's testbed (4 TESLA C2075 GPUs, PCIe 2.0, 7200RPM disk).
type Config = params.Config

// FaultConfig sets the seeded fault-injection schedule; see internal/faults
// for the per-site probability and magnitude fields. Pass it to
// System.EnableFaults.
type FaultConfig = faults.Config

// Open flags for Gopen.
const (
	O_RDONLY    = core.O_RDONLY
	O_WRONLY    = core.O_WRONLY
	O_RDWR      = core.O_RDWR
	O_CREATE    = core.O_CREATE
	O_TRUNC     = core.O_TRUNC
	O_GWRONCE   = core.O_GWRONCE
	O_GWRSHARED = core.O_GWRSHARED
	O_NOSYNC    = core.O_NOSYNC
)

// Re-exported types so applications need only this package.
type (
	// Info is the result of Gfstat.
	Info = core.Info
	// Mapping is a Gmmap'd window into the buffer cache.
	Mapping = core.Mapping
	// Stats is GPUfs instrumentation (lock-free vs locked accesses,
	// pages reclaimed, open coalescing).
	Stats = core.Stats
	// Time is a virtual timestamp.
	Time = simtime.Time
	// Duration is a span of virtual time.
	Duration = simtime.Duration
	// Dirent is one directory entry returned by Greaddir.
	Dirent = core.Dirent
	// WarpReq is one thread's positioned read within a GpreadWarp call.
	WarpReq = core.WarpReq
	// OpenFuture is the join handle of a GopenAhead.
	OpenFuture = core.OpenFuture
	// PipeMode selects the end of a pipe (PipeReader or PipeWriter).
	PipeMode = core.PipeMode
)

// Pipe ends for GpipeOpen and GpipeClose.
const (
	PipeReader = core.PipeReader
	PipeWriter = core.PipeWriter
)

// DefaultConfig returns the paper-testbed configuration at full scale.
func DefaultConfig() Config { return params.Default() }

// ScaledConfig returns the paper-testbed configuration with all capacities
// scaled by the given factor, so experiments run quickly while preserving
// every capacity-driven crossover.
func ScaledConfig(scale float64) Config { return params.Scaled(scale) }

// System is one simulated machine: the host (CPU, RAM, disk, file system,
// GPUfs consistency layer and RPC daemon) plus its GPUs.
type System struct {
	cfg      Config
	host     *hostfs.FS
	layer    *wrapfs.Layer
	bus      *pcie.Bus
	server   *rpc.Server
	syscalls *gsys.Service
	gpus     []*GPU

	// hostClock orders host-side setup operations (workload generation).
	hostClock *simtime.Clock

	tracer *trace.Tracer
	faults *faults.Injector
	met    *metrics.Registry
}

// GPU is one device together with its GPUfs instance.
type GPU struct {
	sys    *System
	dev    *gpu.Device
	link   *pcie.Link
	client *rpc.Client
	fs     *core.FS
}

// NewSystem builds a simulated machine from the configuration. With
// cfg.MetricsEnabled set, a fresh metrics registry is created and attached
// (reachable via Metrics).
func NewSystem(cfg Config) (*System, error) {
	return NewSystemWithMetrics(cfg, nil)
}

// NewSystemWithMetrics builds a simulated machine that records into reg.
// A nil reg falls back to NewSystem behavior: a fresh registry when
// cfg.MetricsEnabled is set, no metrics otherwise. Passing a non-nil reg
// attaches it regardless of cfg.MetricsEnabled — the idiom for
// aggregating several Systems (a benchmark sweep) into one registry.
// Collection is observation-only and never perturbs virtual timing.
func NewSystemWithMetrics(cfg Config, reg *metrics.Registry) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if reg == nil && cfg.MetricsEnabled {
		reg = metrics.New()
	}

	host := hostfs.New(hostfs.Options{
		DiskBandwidth: cfg.DiskBandwidth,
		DiskSeek:      cfg.DiskSeek,
		MemBandwidth:  cfg.CPUMemBandwidth,
		// The OS and applications claim a slice of RAM; the rest
		// backs the page cache. This is why the paper's largest
		// matrix (11 GB on a 12 GB machine) "barely fits": GPUfs
		// squeaks by, while the CUDA baselines' pinned buffers push
		// the page cache into the disk-bound regime (§5.1.4).
		CacheBytes:      cfg.CPURAMBytes / 16 * 15,
		SyscallOverhead: cfg.SyscallOverhead,
	})
	layer := wrapfs.New(host)
	bus := pcie.New(pcie.Config{
		Bandwidth:        cfg.PCIeBandwidth,
		DMALatency:       cfg.DMALatency,
		Channels:         cfg.DMAChannels,
		HostMemBandwidth: cfg.CPUMemBandwidth,
	}, host.MemBus())
	server := rpc.NewServer(rpc.Config{
		PollInterval:  cfg.RPCPollInterval,
		HandleCost:    cfg.RPCHandleCost,
		ReturnLatency: cfg.RPCPollInterval / 4,
		Shards:        cfg.RPCShards,
		Workers:       cfg.DaemonWorkers,
	}, layer)
	// Attach instrumentation before any Link or Client exists: both
	// pre-resolve their metric handles at construction time.
	bus.SetMetrics(reg)
	server.SetMetrics(reg)

	// One syscall service for the whole machine: the syscall table is
	// stateless, but the gpipe table must be shared so kernels on
	// different GPUs can meet at a named pipe.
	syscalls := gsys.NewService(server)
	ordering, err := gsys.ParseOrdering(cfg.SyscallOrdering)
	if err != nil {
		return nil, err
	}

	sys := &System{
		cfg:       cfg,
		host:      host,
		layer:     layer,
		bus:       bus,
		server:    server,
		syscalls:  syscalls,
		hostClock: simtime.NewClock(0),
		met:       reg,
	}

	for i := 0; i < cfg.NumGPUs; i++ {
		dev := gpu.New(gpu.Config{
			ID:              i,
			MPs:             cfg.MPsPerGPU,
			BlocksPerMP:     cfg.BlocksPerMP,
			WarpSize:        cfg.WarpSize,
			MemBytes:        cfg.GPUMemBytes,
			MemBandwidth:    cfg.GPUMemBandwidth,
			Flops:           cfg.GPUFlops,
			ScratchpadBytes: cfg.ScratchpadBytes,
			LaunchOverhead:  cfg.KernelLaunchOverhead,
		})
		link := bus.NewLink(i, dev.MemBandwidthResource(), cfg.GPUMemBandwidth)
		client := server.NewClient(i, link)
		// FrameShards 0 resolves to one allocator shard per multiprocessor:
		// lanes (threadblocks and cleaner workers) hash by index, so the
		// shard count that matches the hardware's concurrency is the MP
		// count.
		frameShards := cfg.FrameShards
		if frameShards == 0 {
			frameShards = cfg.MPsPerGPU
		}
		fs, err := core.New(i, core.Options{
			PageSize:             cfg.PageSize,
			CacheBytes:           cfg.BufferCacheBytes,
			APICostPerPage:       cfg.APICostPerPage,
			RadixLookupLockFree:  cfg.RadixLookupLockFree,
			RadixLookupLocked:    cfg.RadixLookupLocked,
			ForceLockedTraversal: cfg.ForceLockedTraversal,
			ReadAheadPages:       cfg.ReadAheadPages,
			ReadAheadAdaptive:    cfg.ReadAheadAdaptive,
			HistoryPrefetch:      cfg.HistoryPrefetch,
			CleanerWorkers:       cfg.CleanerWorkers,
			DisableFastReopen:    cfg.DisableFastReopen,
			ZeroCopyRead:         cfg.ZeroCopyRead,
			CkptMaxBytes:         cfg.CkptMaxBytes,
			FrameShards:          frameShards,
			Metrics:              reg,
			Syscalls:             syscalls,
			SyscallOrdering:      ordering,
		}, client, dev.Mem)
		if err != nil {
			return nil, fmt.Errorf("gpufs: initializing GPU %d: %w", i, err)
		}
		sys.gpus = append(sys.gpus, &GPU{sys: sys, dev: dev, link: link, client: client, fs: fs})
	}
	return sys, nil
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// NumGPUs reports how many GPUs the system has.
func (s *System) NumGPUs() int { return len(s.gpus) }

// GPU returns device i.
func (s *System) GPU(i int) *GPU { return s.gpus[i] }

// Host exposes the host file system (for CPU-side programs and workload
// setup).
func (s *System) Host() *hostfs.FS { return s.host }

// HostClock is the clock used for host-side convenience operations.
func (s *System) HostClock() *simtime.Clock { return s.hostClock }

// Server exposes the CPU-side GPUfs daemon (stats).
func (s *System) Server() *rpc.Server { return s.server }

// Syscalls exposes the machine's shared syscall service (the syscall
// table and the gpipe table).
func (s *System) Syscalls() *gsys.Service { return s.syscalls }

// Bus exposes the interconnect (Figure 5 cost toggles).
func (s *System) Bus() *pcie.Bus { return s.bus }

// WriteHostFile creates path on the host file system with the given
// content, creating parent directories as needed.
func (s *System) WriteHostFile(path string, data []byte) error {
	if err := s.host.MkdirAll(dirOf(path), hostfs.ModeDir|hostfs.ModeRead|hostfs.ModeWrite); err != nil {
		return err
	}
	return s.host.WriteFile(s.hostClock, path, data, hostfs.ModeRead|hostfs.ModeWrite)
}

// ReadHostFile reads path from the host file system.
func (s *System) ReadHostFile(path string) ([]byte, error) {
	return s.host.ReadFile(s.hostClock, path)
}

// DropHostCaches flushes the host page cache, as the paper does before the
// disk-bound experiments.
func (s *System) DropHostCaches() { s.host.DropCaches() }

// EnableTracing attaches a shared operation tracer (capacity events kept)
// to every GPU's GPUfs instance and turns it on. Returns the tracer for
// inspection; see internal/trace for the event format and summaries.
func (s *System) EnableTracing(capacity int) *trace.Tracer {
	tr := trace.New(capacity)
	tr.Enable(true)
	for _, g := range s.gpus {
		g.fs.SetTracer(tr)
	}
	s.tracer = tr
	// Injected faults and RPC retries appear among the workload's events.
	s.faults.SetTracer(tr)
	return tr
}

// Tracer returns the tracer installed by EnableTracing, or nil.
func (s *System) Tracer() *trace.Tracer { return s.tracer }

// Metrics returns the system's metrics registry, or nil when metrics are
// disabled (neither cfg.MetricsEnabled nor NewSystemWithMetrics).
func (s *System) Metrics() *metrics.Registry { return s.met }

// EnableFaults installs a seeded fault injector across the whole machine:
// the RPC daemon (slow polls, lost/duplicated responses, transient EAGAIN),
// the host file system and disk (EIO, short reads, bad sectors, fsync
// failures, latency spikes), and the PCIe complex (DMA stalls, bandwidth
// degradation). The schedule is a pure function of cfg.Seed. Returns the
// injector, whose SetEnabled toggles injection without losing counters.
func (s *System) EnableFaults(cfg FaultConfig) *faults.Injector {
	inj := faults.New(cfg)
	s.host.SetFaultInjector(inj)
	s.bus.SetFaultInjector(inj)
	s.server.SetFaultInjector(inj)
	s.faults = inj
	if s.tracer != nil {
		inj.SetTracer(s.tracer)
	}
	return inj
}

// FaultInjector returns the injector installed by EnableFaults, or nil.
func (s *System) FaultInjector() *faults.Injector { return s.faults }

// ResetTime returns every virtual-time resource in the machine (host memory
// bus, disk, DMA channels, RPC daemon, GPU execution slots) to idle, and
// rewinds the host setup clock. File contents, page-cache residency, and
// GPU buffer-cache contents are untouched. Benchmarks call it between
// workload generation and measurement, and between back-to-back runs
// sharing one System.
func (s *System) ResetTime() {
	s.host.ResetTime()
	s.server.ResetTime()
	for _, g := range s.gpus {
		g.dev.ResetTime()
		g.link.Reset()
		g.fs.Cache().ResetTimes()
	}
	s.hostClock = simtime.NewClock(0)
}

func dirOf(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			if i == 0 {
				return "/"
			}
			return p[:i]
		}
	}
	return "/"
}

// Device exposes the underlying device model.
func (g *GPU) Device() *gpu.Device { return g.dev }

// Link exposes the device's PCIe link (stats, baselines).
func (g *GPU) Link() *pcie.Link { return g.link }

// FS exposes the device's GPUfs instance (stats, tests).
func (g *GPU) FS() *core.FS { return g.fs }

// Restart models a GPU-card restart after a software failure (§3.3 of the
// paper): the device's fault latch is cleared and its ENTIRE memory state
// is lost — every GPUfs descriptor, cached page, and un-synchronized write
// on this GPU is gone. Host files keep whatever was previously propagated
// by Gfsync or Gmsync.
func (g *GPU) Restart() {
	g.dev.ResetFault()
	// The restart itself is host-driven; run its teardown on a host-side
	// clock carried by a throwaway block context.
	g.dev.Launch(0, 1, 1, func(b *gpu.Block) error {
		g.fs.Restart(b)
		return nil
	})
}

// CheckpointImage captures this GPU's GPUfs state — buffer cache, file
// tables, history profiles — into an image, copy-on-write against any
// kernels still running (ISSUE 10). It returns the image and the capture
// actor's virtual end time. Use serve.Server.Checkpoint for a whole-host
// capture with queue freezing.
func (g *GPU) CheckpointImage(start Time) (*ckpt.FSImage, Time, error) {
	return g.fs.CheckpointImage(start)
}

// RestoreImage materializes a checkpoint image onto this (fresh) GPU's
// GPUfs instance. Like Restart, the work is host-driven: a throwaway
// single-block launch carries the restore's virtual cost, and the
// returned time is the restore's virtual completion.
func (g *GPU) RestoreImage(img *ckpt.FSImage) (Time, error) {
	return g.dev.Launch(0, 1, 1, func(b *gpu.Block) error {
		return g.fs.RestoreImage(b, img)
	})
}

// ResidentPages reports how many buffer-cache pages of path this GPU
// currently holds (open or closed-table). The serving layer
// (internal/serve) uses it to route jobs to the GPU whose cache already
// holds their input.
func (g *GPU) ResidentPages(path string) int64 { return g.fs.ResidentPages(path) }

// Stats returns the GPUfs instrumentation counters for this device,
// including the host daemon's RPC totals and the machine-wide injected
// fault count (zero unless EnableFaults was called).
func (g *GPU) Stats() Stats {
	st := g.fs.Snapshot()
	st.RPCRequests = g.sys.server.TotalRequests()
	st.FaultsInjected = g.sys.faults.TotalInjected()
	return st
}

// BlockCtx is the execution context of one threadblock with the GPUfs API
// attached. It embeds the device block context (Idx, Threads, Clock,
// SyncThreads, Compute, …).
type BlockCtx struct {
	*gpu.Block
	fs *core.FS
}

// Launch runs a kernel of blocks×threads on the device, starting at the
// given virtual time, and returns the kernel's virtual completion time.
// Like every GPU kernel, blocks are dispatched in non-deterministic order
// and run to completion. The supplied function is the threadblock body; it
// performs GPUfs calls collectively on behalf of its threads.
func (g *GPU) Launch(start Time, blocks, threads int, fn func(*BlockCtx) error) (Time, error) {
	return g.dev.Launch(start, blocks, threads, func(b *gpu.Block) error {
		return fn(&BlockCtx{Block: b, fs: g.fs})
	})
}

// ---- The GPUfs API (Table 1) ----

// Gopen opens a file in the namespace shared by all threadblocks of this
// GPU. Concurrent opens of the same file coalesce into one host open, and
// the returned descriptor denotes the file (not the open): every block
// opening the same file receives the same descriptor.
func (c *BlockCtx) Gopen(path string, flags int) (int, error) {
	return c.fs.Open(c.Block, path, flags)
}

// Gclose drops one block's reference to the descriptor. It does NOT
// propagate dirty data to the host — call Gfsync for that.
func (c *BlockCtx) Gclose(fd int) error { return c.fs.Close(c.Block, fd) }

// Gread reads len(dst) bytes at the explicit offset off (pread semantics —
// descriptors have no seek pointers).
func (c *BlockCtx) Gread(fd int, dst []byte, off int64) (int, error) {
	return c.fs.Read(c.Block, fd, dst, off)
}

// Gwrite writes len(src) bytes at the explicit offset off into the GPU
// buffer cache (pwrite semantics).
func (c *BlockCtx) Gwrite(fd int, src []byte, off int64) (int, error) {
	return c.fs.Write(c.Block, fd, src, off)
}

// Gfsync synchronously writes back to the host all of the file's dirty
// pages that are not currently memory-mapped or mid-access.
func (c *BlockCtx) Gfsync(fd int) error { return c.fs.Fsync(c.Block, fd) }

// GfsyncRange synchronizes only the byte range [off, off+n) — the paper's
// gfsync accepts "either an entire file or a specific offset range".
func (c *BlockCtx) GfsyncRange(fd int, off, n int64) error {
	return c.fs.FsyncRange(c.Block, fd, off, n)
}

// GfsyncDisk additionally forces the file to stable storage (host fsync).
func (c *BlockCtx) GfsyncDisk(fd int) error { return c.fs.FsyncDisk(c.Block, fd) }

// Gmmap maps a prefix of [off, off+length) directly into the buffer cache;
// the mapping never crosses a cache page boundary, so callers loop to map
// more.
func (c *BlockCtx) Gmmap(fd int, off, length int64) (*Mapping, error) {
	return c.fs.Mmap(c.Block, fd, off, length)
}

// Gmunmap releases a mapping.
func (c *BlockCtx) Gmunmap(m *Mapping) error { return m.Munmap(c.Block) }

// Gmsync writes the mapping's page back to the host. The application must
// coordinate Gmsync with updates by other threadblocks.
func (c *BlockCtx) Gmsync(m *Mapping) error { return m.Msync(c.Block) }

// Gunlink removes a file; buffer space on this GPU is reclaimed
// immediately.
func (c *BlockCtx) Gunlink(path string) error { return c.fs.Unlink(c.Block, path) }

// Gfstat retrieves file metadata from GPU-resident state; Size reflects
// the size at first Gopen, extended by local writes.
func (c *BlockCtx) Gfstat(fd int) (Info, error) { return c.fs.Fstat(c.Block, fd) }

// Gftruncate truncates the file and reclaims affected cached pages.
func (c *BlockCtx) Gftruncate(fd int, size int64) error {
	return c.fs.Ftruncate(c.Block, fd, size)
}

// ---- The generic syscall surface (ISSUE 7) ----

// GopenAhead issues Gopen ahead of need: a cold read-only open is
// dispatched as a relaxed non-blocking syscall — the block does not wait
// for the host round trip until it joins via OpenFuture.Wait — so a
// kernel can pipeline its next inputs' opens behind the current file's
// reads. Every future must be Waited exactly once; Wait returns the
// descriptor (release it with Gclose as usual). Warm or writable opens
// fall back to a plain strong Gopen at Wait time.
func (c *BlockCtx) GopenAhead(path string, flags int) *OpenFuture {
	return c.fs.OpenAhead(c.Block, path, flags)
}

// Gwait joins an open issued by GopenAhead.
func (c *BlockCtx) Gwait(of *OpenFuture) (int, error) { return of.Wait(c.Block) }

// Greaddir enumerates one page of directory entries of path, starting at
// cookie (0 for the first call) and returning at most max entries plus
// the next cookie (-1 once the enumeration is complete).
func (c *BlockCtx) Greaddir(path string, cookie int64, max int) ([]Dirent, int64, error) {
	return c.fs.Readdir(c.Block, path, cookie, max)
}

// GpreadWarp services one positioned read per thread of the block,
// coalescing each warp whose requests form a contiguous ascending span
// into a single warp-granularity syscall descriptor. Returns the total
// bytes read.
func (c *BlockCtx) GpreadWarp(fd int, reqs []WarpReq) (int64, error) {
	return c.fs.ReadWarp(c.Block, fd, reqs)
}

// GpipeOpen opens (creating on first open) the named bounded pipe with
// the given buffer capacity and declared writer count; every opener must
// declare the same capacity and writer count. Pipes live in host memory,
// so the two ends may be kernels on different GPUs.
func (c *BlockCtx) GpipeOpen(name string, mode PipeMode, capBytes, writers int) (int64, error) {
	return c.fs.PipeOpen(c.Block, name, mode, capBytes, writers)
}

// GpipeWrite writes data into the pipe as one atomic record, blocking on
// virtual time while the pipe lacks room for the whole record.
func (c *BlockCtx) GpipeWrite(pd int64, data []byte) (int, error) {
	return c.fs.PipeWrite(c.Block, pd, data)
}

// GpipeRead reads up to len(dst) buffered bytes, blocking on virtual time
// while the pipe is empty with live writers; io.EOF marks end of stream.
func (c *BlockCtx) GpipeRead(pd int64, dst []byte) (int, error) {
	return c.fs.PipeRead(c.Block, pd, dst)
}

// GpipeClose closes one end of the pipe; when the last declared writer
// closes, readers drain the buffer and then see io.EOF.
func (c *BlockCtx) GpipeClose(pd int64, mode PipeMode) error {
	return c.fs.PipeClose(c.Block, pd, mode)
}
