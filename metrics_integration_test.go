package gpufs_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"gpufs"
	"gpufs/internal/metrics"
	"gpufs/internal/serve"
)

// metricsWorkload runs a fixed multi-GPU read/write/sync workload and
// returns the virtual completion time of every launch plus each GPU's
// final counters — everything that would betray a timing perturbation.
func metricsWorkload(t *testing.T, sys *gpufs.System) (ends []gpufs.Time, stats []gpufs.Stats) {
	t.Helper()
	content := make([]byte, 256<<10)
	for i := range content {
		content[i] = byte(i * 13)
	}
	if err := sys.WriteHostFile("/mtest/in.bin", content); err != nil {
		t.Fatal(err)
	}

	// Phase 1: both GPUs read the file concurrently.
	for g := 0; g < sys.NumGPUs(); g++ {
		end, err := sys.GPU(g).Launch(0, 4, 64, func(c *gpufs.BlockCtx) error {
			fd, err := c.Gopen("/mtest/in.bin", gpufs.O_RDONLY)
			if err != nil {
				return err
			}
			defer c.Gclose(fd)
			buf := make([]byte, len(content)/c.Blocks)
			off := int64(c.Idx * len(buf))
			_, err = c.Gread(fd, buf, off)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, end)
	}

	// Phase 2: GPU 0 writes and synchronizes, exercising the write-back path.
	end, err := sys.GPU(0).Launch(0, 2, 64, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen("/mtest/out.bin", gpufs.O_GWRONCE)
		if err != nil {
			return err
		}
		chunk := make([]byte, 32<<10)
		for i := range chunk {
			chunk[i] = byte(c.Idx)
		}
		if _, err := c.Gwrite(fd, chunk, int64(c.Idx*len(chunk))); err != nil {
			return err
		}
		if err := c.Gfsync(fd); err != nil {
			return err
		}
		return c.Gclose(fd)
	})
	if err != nil {
		t.Fatal(err)
	}
	ends = append(ends, end)

	// Phase 3: GPU 1 re-reads after the sync (close-to-open revalidation).
	end, err = sys.GPU(1).Launch(0, 1, 64, func(c *gpufs.BlockCtx) error {
		fd, err := c.Gopen("/mtest/out.bin", gpufs.O_RDONLY)
		if err != nil {
			return err
		}
		defer c.Gclose(fd)
		buf := make([]byte, 4<<10)
		_, err = c.Gread(fd, buf, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	ends = append(ends, end)

	for g := 0; g < sys.NumGPUs(); g++ {
		stats = append(stats, sys.GPU(g).Stats())
	}
	return ends, stats
}

// TestMetricsDisabledBitIdentical asserts the acceptance criterion that
// MetricsEnabled=false reproduces the metrics-on run bit-for-bit: metrics
// are observation-only, so enabling them must not move a single virtual
// timestamp or counter.
func TestMetricsDisabledBitIdentical(t *testing.T) {
	run := func(enabled bool) ([]gpufs.Time, []gpufs.Stats) {
		cfg := gpufs.ScaledConfig(1.0 / 128)
		cfg.NumGPUs = 2
		cfg.MetricsEnabled = enabled
		sys, err := gpufs.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if enabled && sys.Metrics() == nil {
			t.Fatal("MetricsEnabled=true but System.Metrics() is nil")
		}
		if !enabled && sys.Metrics() != nil {
			t.Fatal("MetricsEnabled=false but a registry is attached")
		}
		return metricsWorkload(t, sys)
	}

	endsOff, statsOff := run(false)
	endsOn, statsOn := run(true)

	for i := range endsOff {
		if endsOff[i] != endsOn[i] {
			t.Errorf("launch %d: virtual end time %v with metrics off, %v with metrics on",
				i, endsOff[i], endsOn[i])
		}
	}
	for g := range statsOff {
		if statsOff[g] != statsOn[g] {
			t.Errorf("gpu%d: stats diverge with metrics on:\n  off: %+v\n  on:  %+v",
				g, statsOff[g], statsOn[g])
		}
	}
}

// TestPrometheusExportCoverage runs a workload that crosses all four
// instrumented subsystems (core, rpc, pcie, serve) and asserts that the
// Prometheus exposition parses under the strict parser and contains
// populated families from each.
func TestPrometheusExportCoverage(t *testing.T) {
	cfg := gpufs.ScaledConfig(1.0 / 128)
	cfg.NumGPUs = 2
	cfg.MetricsEnabled = true
	sys, err := gpufs.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}

	text := strings.Repeat("needle in a haystack of words ", 2000)
	for i := 0; i < 4; i++ {
		if err := sys.WriteHostFile(fmt.Sprintf("/corpus/f%d.txt", i), []byte(text)); err != nil {
			t.Fatal(err)
		}
	}

	srv := serve.New(sys, serve.Config{QueueDepth: 8, MaxBatch: 4, Policy: serve.PlaceAffinity})
	var futs []*serve.Future
	for i := 0; i < 16; i++ {
		fut, err := srv.Submit(fmt.Sprintf("tenant-%d", i%2), serve.Job{
			Kind: serve.JobGrep,
			Path: fmt.Sprintf("/corpus/f%d.txt", i%4),
			Word: "needle",
		})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	for _, fut := range futs {
		if res := fut.Wait(); res.Err != nil {
			t.Fatalf("job failed: %v", res.Err)
		}
	}
	srv.Drain()

	var buf bytes.Buffer
	if err := sys.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	fams, err := metrics.ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("strict parse of exposition failed: %v\n%s", err, buf.String())
	}

	// Every subsystem must contribute at least one populated family, and
	// the headline family of each must be present by exact name.
	for _, name := range []string{
		"gpufs_core_op_seconds",
		"gpufs_core_cache_hits_total",
		"gpufs_rpc_service_time_seconds",
		"gpufs_rpc_requests_total",
		"gpufs_pcie_bytes_total",
		"gpufs_pcie_latency_seconds",
		"gpufs_serve_admitted_total",
		"gpufs_serve_job_latency_seconds",
	} {
		fam, ok := fams[name]
		if !ok {
			t.Errorf("exposition missing family %s", name)
			continue
		}
		if len(fam.Samples) == 0 {
			t.Errorf("family %s present but empty", name)
		}
	}
	counts := map[string]int{}
	for name := range fams {
		for _, sub := range []string{"core", "rpc", "pcie", "serve"} {
			if strings.HasPrefix(name, "gpufs_"+sub+"_") {
				counts[sub]++
			}
		}
	}
	for _, sub := range []string{"core", "rpc", "pcie", "serve"} {
		if counts[sub] < 2 {
			t.Errorf("subsystem %s exports only %d families", sub, counts[sub])
		}
	}

	// NDJSON must also serialize without error.
	var nd bytes.Buffer
	if err := sys.Metrics().WriteNDJSON(&nd); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	if nd.Len() == 0 {
		t.Fatal("NDJSON export is empty")
	}
}
